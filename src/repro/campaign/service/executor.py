"""Pluggable point-execution backends for the campaign service.

Both backends — the in-process :class:`LocalForkExecutor` and the remote
TCP worker (:mod:`repro.campaign.service.worker`) — funnel through
:func:`execute_point`, which reuses the *existing* per-point machinery of
:class:`~repro.campaign.runner.CampaignRunner` verbatim: a killable
forked worker process per attempt, retry with exponential backoff, a
per-point wall-clock timeout, and the injected point faults
(``crash-point`` / ``flaky-point`` / ``hang-point``).  The point runs
against a private throwaway :class:`~repro.campaign.store.ResultStore`,
and the raw artifact JSON is lifted out of it — so a point executed by
any backend on any machine produces byte-identical artifact payloads
(simulations are deterministic given their config; JSON serialization is
canonical).
"""

from __future__ import annotations

import asyncio
import functools
import tempfile
from typing import Optional

from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore, config_from_json

__all__ = ["execute_point", "LocalForkExecutor"]


def execute_point(
    config_json: dict,
    *,
    schema_version: int,
    retries: int = 2,
    backoff_s: float = 0.25,
    timeout_s: Optional[float] = None,
) -> dict:
    """Run one point through the fork/retry/timeout machinery.

    Returns ``{"ok": True, "artifact": payload, "attempts": n}`` on
    success — ``payload`` being the exact artifact JSON a single-host
    campaign would have written — or ``{"ok": False, "error": ...,
    "kind": ..., "attempts": n}`` after retries are exhausted.
    """
    config = config_from_json(config_json)
    with tempfile.TemporaryDirectory(prefix="repro-point-") as tmp:
        store = ResultStore(tmp, schema_version=schema_version)
        runner = CampaignRunner(
            store,
            retries=retries,
            backoff_s=backoff_s,
            timeout_s=timeout_s,
            max_workers=1,
        )
        out = runner.run_points([config])
        if out["completed"]:
            digest = store.digest(config)
            manifest_entry = store.load_manifest()["points"].get(digest, {})
            return {
                "ok": True,
                "artifact": store.read_artifact(digest),
                "attempts": manifest_entry.get("attempts", 1),
            }
        failure = out["failures"][0]
        return {
            "ok": False,
            "error": failure.error,
            "kind": failure.kind,
            "attempts": failure.attempts,
        }


class LocalForkExecutor:
    """N in-process slots draining the scheduler through forked workers.

    The local twin of a remote TCP worker: each slot loops claim → run →
    report against the service's scheduler directly (no sockets), running
    the blocking fork/wait machinery on the default thread-pool executor
    so the event loop stays responsive.  While a point runs, the slot
    heartbeats its lease from the event-loop side — the same liveness
    contract remote workers honour.
    """

    def __init__(
        self,
        service,
        slots: int,
        *,
        retries: int = 2,
        backoff_s: float = 0.25,
        timeout_s: Optional[float] = None,
        idle_poll_s: float = 0.2,
    ) -> None:
        self.service = service
        self.slots = max(0, slots)
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.idle_poll_s = idle_poll_s
        self._tasks: list[asyncio.Task] = []
        self._stopping = asyncio.Event()

    def start(self) -> None:
        for slot in range(self.slots):
            self._tasks.append(
                asyncio.get_running_loop().create_task(self._run_slot(slot))
            )

    async def stop(self) -> None:
        self._stopping.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    async def _run_slot(self, slot: int) -> None:
        service = self.service
        worker = f"local/{slot}"
        service.scheduler.connect_worker(worker)
        loop = asyncio.get_running_loop()
        heartbeat_s = service.scheduler.lease_ttl / 3.0
        while not self._stopping.is_set():
            lease = service.scheduler.claim(worker)
            if lease is None:
                await asyncio.sleep(self.idle_poll_s)
                continue
            run = loop.run_in_executor(
                None,
                functools.partial(
                    execute_point,
                    lease["config"],
                    schema_version=service.store.schema_version,
                    retries=self.retries,
                    backoff_s=self.backoff_s,
                    timeout_s=self.timeout_s,
                ),
            )
            while True:
                done, _ = await asyncio.wait([run], timeout=heartbeat_s)
                if done:
                    break
                service.scheduler.heartbeat(worker, lease["digest"])
            outcome = run.result()
            service.finish_point(worker, lease["digest"], outcome)
