"""Distributed campaign service: scheduler, workers, live status.

A campaign can outgrow one machine.  This package turns the resumable
single-host campaign (:mod:`repro.campaign`) into a small distributed
system while preserving its core guarantee — a sweep drained by N
networked workers is **bit-identical** (artifact-for-artifact) to the
same sweep run locally:

* :mod:`~repro.campaign.service.scheduler` — work-stealing lease
  scheduler: pending-point queue, lease TTL + heartbeats, reaping and
  requeueing, priority classes, per-tenant quotas;
* :mod:`~repro.campaign.service.server` — :class:`CampaignService`, the
  asyncio facade tying scheduler + executors + store together, including
  journal-fed single-writer manifest compaction;
* :mod:`~repro.campaign.service.executor` — the shared per-point
  execution path and the in-process :class:`LocalForkExecutor` backend;
* :mod:`~repro.campaign.service.worker` — the remote TCP worker
  (``repro campaign worker --connect``) and its LDJSON protocol
  (:mod:`~repro.campaign.service.protocol`);
* :mod:`~repro.campaign.service.status` — polling-JSON + SSE live status
  (``repro campaign watch``);
* :mod:`~repro.campaign.service.runner` — :class:`ServiceRunner`, the
  :class:`~repro.campaign.runner.CampaignRunner` look-alike experiments
  use to drain their sweeps through a service.
"""

from repro.campaign.service.executor import LocalForkExecutor, execute_point
from repro.campaign.service.runner import ServiceRunner
from repro.campaign.service.scheduler import Lease, LeaseScheduler, SchedulerPoint
from repro.campaign.service.server import CampaignService, ServiceError
from repro.campaign.service.worker import WorkerError, WorkerSession, run_worker

__all__ = [
    "CampaignService",
    "ServiceError",
    "LeaseScheduler",
    "SchedulerPoint",
    "Lease",
    "LocalForkExecutor",
    "execute_point",
    "WorkerSession",
    "WorkerError",
    "run_worker",
    "ServiceRunner",
]
