"""The campaign service: scheduler + executors + store, behind one facade.

:class:`CampaignService` runs an asyncio event loop on a background
thread and exposes a small synchronous API (``start`` / ``submit_points``
/ ``wait_points`` / ``status_snapshot`` / ``stop``), so the serve CLI,
the :class:`~repro.campaign.service.runner.ServiceRunner` adapter and the
test-suite all drive it without touching asyncio themselves.

On the loop live:

* the **TCP worker server** (line-delimited JSON, see
  :mod:`repro.campaign.service.protocol`) remote machines connect to;
* the **local fork executor** (:class:`~repro.campaign.service.executor.
  LocalForkExecutor`) — N in-process slots claiming from the same
  scheduler, so one box can drain a campaign with zero network setup;
* the **reaper**, which expires silent leases and requeues their points
  (work stealing's liveness half);
* the **compactor**, the store's single manifest writer: every completed
  or failed point is journaled append-only the moment it is known, and
  the compactor periodically folds the journal into ``manifest.json`` —
  N result producers, one index writer, no torn manifests;
* the **status server** (:mod:`repro.campaign.service.status`), polling
  JSON + SSE, when a status port is configured.

The core invariant — a campaign drained by any mix of local slots and
remote workers is bit-identical (artifact-for-artifact, digest-for-digest)
to a single-host :class:`~repro.campaign.runner.CampaignRunner` run — is
enforced by construction: every backend runs points through the same
forked-worker machinery and ships the canonical artifact JSON, and the
service writes artifacts through the same atomic store path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Optional, Sequence

from repro.campaign.service import protocol
from repro.campaign.service.executor import LocalForkExecutor
from repro.campaign.service.scheduler import LeaseScheduler
from repro.campaign.store import (
    ResultStore,
    StoreSchemaError,
    config_to_json,
    new_writer_id,
)
from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.obs.registry import merge_into

__all__ = ["CampaignService", "ServiceError"]


class ServiceError(ReproError):
    """Campaign-service lifecycle or protocol misuse."""


class CampaignService:
    """A running sweep service over one result store.

    Parameters
    ----------
    store:
        The shared :class:`~repro.campaign.store.ResultStore` (or path).
    host / port:
        Worker-protocol TCP bind address (``port=0`` = ephemeral; the
        resolved port is on ``self.port`` after :meth:`start`).
    status_port:
        Bind the polling-JSON/SSE status endpoint here (``0`` =
        ephemeral, ``None`` = no status server).
    lease_ttl / requeue_limit / quotas / default_quota:
        Scheduler knobs — see :class:`~repro.campaign.service.scheduler.
        LeaseScheduler`.
    local_workers:
        Local fork-executor slots (0 = rely on remote workers entirely).
    retries / backoff_s / timeout_s:
        Per-point fork machinery knobs applied by the *local* executor
        (remote workers bring their own).
    compact_interval_s:
        How often the journal is folded into the manifest.
    """

    def __init__(
        self,
        store: ResultStore | str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        status_port: Optional[int] = None,
        lease_ttl: float = 15.0,
        requeue_limit: int = 3,
        quotas: Optional[dict[str, int]] = None,
        default_quota: Optional[int] = None,
        local_workers: int = 0,
        retries: int = 2,
        backoff_s: float = 0.25,
        timeout_s: Optional[float] = None,
        compact_interval_s: float = 2.0,
        idle_retry_s: float = 0.5,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.store.load_manifest()  # fail fast on schema mismatch
        self.scheduler = LeaseScheduler(
            lease_ttl=lease_ttl,
            requeue_limit=requeue_limit,
            quotas=quotas,
            default_quota=default_quota,
        )
        self.host = host
        self.port = port
        self.status_port = status_port
        self.local_workers = local_workers
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.compact_interval_s = compact_interval_s
        self.idle_retry_s = idle_retry_s
        self.writer_id = new_writer_id()
        self.started_at: Optional[float] = None
        self.obs_merged: Optional[dict] = None  #: live merged point snapshots
        self._sealed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._status_server = None
        self._executor: Optional[LocalForkExecutor] = None
        self._tasks: list[asyncio.Task] = []
        self._change: Optional[asyncio.Event] = None
        self._connections = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "CampaignService":
        """Bind the servers and start the background event loop."""
        if self._thread is not None:
            raise ServiceError("service already started")
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._a_start())
            except BaseException as exc:  # bind failures surface in start()
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="campaign-service", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread = None
            raise ServiceError(f"service failed to start: {failure[0]}")
        self.started_at = time.time()
        return self

    async def _a_start(self) -> None:
        self._change = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.status_port is not None:
            from repro.campaign.service.status import StatusServer

            self._status_server = StatusServer(self, self.host, self.status_port)
            await self._status_server.start()
            self.status_port = self._status_server.port
        self._executor = LocalForkExecutor(
            self,
            self.local_workers,
            retries=self.retries,
            backoff_s=self.backoff_s,
            timeout_s=self.timeout_s,
        )
        self._executor.start()
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._reaper()),
            loop.create_task(self._compactor()),
        ]

    def stop(self, grace_s: float = 5.0) -> None:
        """Seal, let connected workers drain to a ``done``, then tear down."""
        if self._loop is None:
            return
        self.seal()
        deadline = time.monotonic() + max(0.0, grace_s)
        while self._connections > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        future = asyncio.run_coroutine_threadsafe(self._a_stop(), self._loop)
        future.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    async def _a_stop(self) -> None:
        if self._executor is not None:
            await self._executor.stop()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._status_server is not None:
            await self._status_server.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            self.store.compact_manifest()
        except (OSError, StoreSchemaError):  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def seal(self) -> None:
        """No more submissions are coming: drained workers may exit."""
        self._sealed = True
        if self._loop is not None and self._change is not None:
            self._loop.call_soon_threadsafe(self._change.set)

    # -- synchronous API ---------------------------------------------------------
    def _run(self, coro, timeout: Optional[float] = None):
        if self._loop is None:
            raise ServiceError("service is not running (call start() first)")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def submit_points(
        self,
        configs: Sequence[SimulationConfig],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Queue fresh points; stored points are resumed, not re-run.

        Returns ``{"digests": [...], "submitted": [...], "resumed": [...]}``
        with digests in config order.
        """
        prepared = []
        for config in configs:
            digest = self.store.digest(config)
            prepared.append(
                (
                    digest,
                    config_to_json(config),
                    config.label(),
                    config.load,
                    config.seed,
                    self.store.has(config),
                )
            )
        return self._run(self._a_submit(prepared, tenant, priority))

    async def _a_submit(self, prepared, tenant: str, priority: int) -> dict:
        digests, submitted, resumed = [], [], []
        for digest, config_json, label, load, seed, stored in prepared:
            digests.append(digest)
            if stored:
                resumed.append(digest)
                continue
            if self.scheduler.submit(
                digest, config_json, label, load, seed,
                tenant=tenant, priority=priority,
            ):
                submitted.append(digest)
        if resumed:
            self.store.journal_append(
                self.writer_id,
                {"op": "count", "name": "resumed", "amount": len(resumed)},
            )
        self._change.set()
        return {"digests": digests, "submitted": submitted, "resumed": resumed}

    def wait_points(
        self, digests: Sequence[str], timeout: Optional[float] = None
    ) -> dict:
        """Block until every digest is terminal; returns their statuses.

        The result maps digest → ``{"status": "done"|"failed", ...}`` with
        error/kind/attempts detail for failures.
        """
        return self._run(self._a_wait(list(digests)), timeout)

    async def _a_wait(self, digests: list[str]) -> dict:
        unknown = [d for d in digests if d not in self.scheduler.points]
        stored = {d for d in unknown if (self.store.point_path(d)).exists()}
        missing = [d for d in unknown if d not in stored]
        if missing:
            raise ServiceError(
                f"waiting on never-submitted point(s): {missing[:3]}..."
                if len(missing) > 3
                else f"waiting on never-submitted point(s): {missing}"
            )
        tracked = [d for d in digests if d in self.scheduler.points]
        while not self.scheduler.is_drained(tracked):
            self._change.clear()
            if self.scheduler.is_drained(tracked):
                break
            await self._change.wait()
        out = {}
        for digest in digests:
            point = self.scheduler.points.get(digest)
            if point is None:
                out[digest] = {"status": "done", "resumed": True}
            elif point.status == "done":
                out[digest] = {"status": "done", "attempts": point.lease_attempts}
            else:
                out[digest] = {
                    "status": "failed",
                    "error": point.error,
                    "kind": point.kind,
                    "attempts": point.lease_attempts,
                    "label": point.label,
                    "load": point.load,
                    "seed": point.seed,
                }
        return out

    def status_snapshot(self) -> dict:
        """JSON-able live state: scheduler, store, merged obs, uptime."""
        return self._run(self._a_status())

    async def _a_status(self) -> dict:
        return self._status_unlocked()

    def _status_unlocked(self) -> dict:
        """Status body; only call on the event-loop thread."""
        return {
            "service": {
                "store": str(self.store.root),
                "schema_version": self.store.schema_version,
                "uptime_s": round(time.time() - self.started_at, 3)
                if self.started_at
                else 0.0,
                "sealed": self._sealed,
                "connections": self._connections,
                "worker_port": self.port,
            },
            "scheduler": self.scheduler.status(),
            "obs": self.obs_merged,
        }

    # -- point completion (event-loop thread only) --------------------------------
    def finish_point(self, worker: str, digest: str, outcome: dict) -> str:
        """Fold one executed point back in: store, journal, scheduler.

        Called by every backend with an :func:`~repro.campaign.service.
        executor.execute_point` outcome.  Success writes the artifact
        atomically and journals a ``done`` record (the manifest itself is
        only ever written by the compactor); terminal failure journals a
        ``failed`` record.  Returns the scheduler verdict.
        """
        point = self.scheduler.points.get(digest)
        if outcome.get("ok"):
            verdict = self.scheduler.complete(worker, digest)
            if verdict in ("ok", "stale") and point is not None:
                self.store.write_artifact(outcome["artifact"])
                self.store.journal_append(
                    self.writer_id,
                    {
                        "op": "done",
                        "digest": digest,
                        "label": point.label,
                        "load": point.load,
                        "seed": point.seed,
                        "attempts": outcome.get("attempts", 1),
                        "worker": worker,
                    },
                )
                obs = outcome["artifact"].get("obs")
                if obs is not None:
                    self.obs_merged = merge_into(self.obs_merged, obs)
        else:
            verdict = self.scheduler.fail(
                worker,
                digest,
                outcome.get("error", "worker reported failure"),
                outcome.get("kind", "error"),
            )
            if verdict == "failed" and point is not None:
                self.store.journal_append(
                    self.writer_id,
                    {
                        "op": "failed",
                        "digest": digest,
                        "label": point.label,
                        "load": point.load,
                        "seed": point.seed,
                        "error": point.error,
                        "kind": point.kind,
                        "attempts": outcome.get("attempts", 1),
                        "worker": worker,
                    },
                )
        self._change.set()
        return verdict

    # -- background tasks --------------------------------------------------------
    async def _reaper(self) -> None:
        """Expire silent leases; the scheduler requeues their points."""
        interval = max(0.05, min(1.0, self.scheduler.lease_ttl / 4.0))
        while True:
            await asyncio.sleep(interval)
            reclaimed = self.scheduler.reap()
            if reclaimed:
                self.store.journal_append(
                    self.writer_id,
                    {"op": "count", "name": "reclaims", "amount": len(reclaimed)},
                )
                self._change.set()

    async def _compactor(self) -> None:
        """Fold the journal into the manifest — the single index writer."""
        while True:
            await asyncio.sleep(self.compact_interval_s)
            try:
                self.store.compact_manifest()
            except (OSError, StoreSchemaError):  # pragma: no cover - defensive
                pass

    # -- the TCP worker protocol --------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        worker_id: Optional[str] = None

        def reply(message: dict) -> None:
            writer.write(protocol.encode(message))

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    reply({"type": "error", "detail": str(exc)})
                    await writer.drain()
                    break
                kind = message["type"]
                if kind == "hello":
                    schema = message.get("schema_version")
                    if schema != self.store.schema_version:
                        reply(
                            {
                                "type": "error",
                                "detail": (
                                    f"schema version mismatch: worker has "
                                    f"{schema}, service store has "
                                    f"{self.store.schema_version}"
                                ),
                            }
                        )
                        await writer.drain()
                        break
                    worker_id = str(message.get("worker") or "anonymous")
                    self.scheduler.connect_worker(worker_id)
                    reply(
                        {
                            "type": "welcome",
                            "schema_version": self.store.schema_version,
                            "protocol_version": protocol.PROTOCOL_VERSION,
                            "lease_ttl": self.scheduler.lease_ttl,
                            "heartbeat_s": self.scheduler.lease_ttl / 3.0,
                        }
                    )
                elif worker_id is None:
                    reply({"type": "error", "detail": "hello required first"})
                elif kind == "claim":
                    lease = self.scheduler.claim(worker_id)
                    if lease is not None:
                        reply({"type": "lease", **lease})
                    elif self._sealed and self.scheduler.is_drained():
                        reply({"type": "done"})
                    else:
                        reply({"type": "idle", "retry_after_s": self.idle_retry_s})
                elif kind == "heartbeat":
                    self.scheduler.heartbeat(worker_id, message.get("digest", ""))
                    continue  # deliberately unacknowledged
                elif kind == "result":
                    try:
                        status = self.finish_point(
                            worker_id,
                            message["digest"],
                            {
                                "ok": True,
                                "artifact": message["artifact"],
                                "attempts": message.get("attempts", 1),
                            },
                        )
                    except (StoreSchemaError, KeyError) as exc:
                        status = f"refused: {exc}"
                    reply({"type": "ack", "status": status})
                elif kind == "point-failed":
                    status = self.finish_point(
                        worker_id,
                        message["digest"],
                        {
                            "ok": False,
                            "error": message.get("error", ""),
                            "kind": message.get("kind", "error"),
                            "attempts": message.get("attempts", 1),
                        },
                    )
                    reply({"type": "ack", "status": status})
                elif kind == "bye":
                    break
                else:
                    reply({"type": "error", "detail": f"unknown type {kind!r}"})
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # worker died mid-exchange; the finally block reclaims
        finally:
            self._connections -= 1
            if worker_id is not None:
                requeued = self.scheduler.disconnect_worker(worker_id)
                if requeued:
                    self._change.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
