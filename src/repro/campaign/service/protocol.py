"""Line-delimited-JSON worker protocol: framing and message vocabulary.

One campaign service talks to N remote workers over TCP.  Every message
is a single JSON object on one ``\\n``-terminated line — trivially
debuggable with ``nc`` and immune to partial-read framing bugs.

The conversation is strict lockstep request/response from the worker's
point of view, with exactly one exception:

========== =============================== ===========================
direction  message                          reply
========== =============================== ===========================
worker →   ``hello`` {worker, tenant,       ``welcome`` {lease_ttl,
           schema_version}                  heartbeat_s, schema_version}
worker →   ``claim`` {}                     ``lease`` {digest, config,
                                            label, attempt} |
                                            ``idle`` {retry_after_s} |
                                            ``done`` {}
worker →   ``heartbeat`` {digest}           *(no reply — see below)*
worker →   ``result`` {digest, artifact,    ``ack`` {status}
           attempts}
worker →   ``point-failed`` {digest,        ``ack`` {status}
           error, kind, attempts}
worker →   ``bye`` {}                       *(connection closes)*
========== =============================== ===========================

Heartbeats are deliberately unacknowledged: they are sent from a side
thread while the worker's main thread is blocked running a point, and an
ack would race the main thread's pending request/response pairing.  The
server replies ``error`` {detail} to malformed or out-of-order traffic.

A ``welcome`` whose ``schema_version`` differs from the worker's store
schema aborts the session — shipping artifacts across schema versions
would poison the store (same refusal the :class:`~repro.campaign.store.
StoreSchemaError` path enforces on disk).
"""

from __future__ import annotations

import json
import socket
from typing import Optional

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode",
    "send_line",
    "recv_line",
    "ProtocolError",
]

#: bumped when the message vocabulary changes incompatibly
PROTOCOL_VERSION = 1

#: generous per-line bound — an artifact for a paper-scale point is ~10 kB;
#: anything near this bound is a framing bug, not data
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed or out-of-order worker-protocol traffic."""


def encode(message: dict) -> bytes:
    """One message as a single LDJSON line (compact separators)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"protocol message must be an object with a "
                            f"'type' field, got: {line[:200]!r}")
    return message


def send_line(sock: socket.socket, message: dict) -> None:
    """Ship one message over a blocking socket (used by the worker client)."""
    sock.sendall(encode(message))


def recv_line(fh) -> Optional[dict]:
    """Read one message from a binary socket makefile; ``None`` on clean EOF."""
    line = fh.readline(MAX_LINE_BYTES)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError(
            f"oversized or truncated protocol line ({len(line)} bytes)"
        )
    return decode(line)
