"""Live campaign status: polling JSON and SSE streaming over plain HTTP.

The status server is a deliberately tiny hand-rolled HTTP/1.1 responder
on asyncio streams — the repo's no-new-dependencies rule rules out web
frameworks, and two fixed routes do not justify one:

``GET /status``
    One JSON snapshot: service metadata, full scheduler state (points,
    tenants, workers, leases, counters) and the live merged obs-registry
    rollup of every completed point.
``GET /events``
    The same snapshot as a ``text/event-stream`` (SSE): one ``status``
    event per update interval until the client disconnects.  SSE rides on
    bare HTTP, works with ``curl -N`` and browsers' ``EventSource``, and
    needs no websocket machinery.

The client half — :func:`fetch_status`, :func:`iter_status_events`,
:func:`render_service_status`, :func:`watch` — backs ``repro campaign
watch`` and the smoke tests, and sticks to the stdlib for the same
reason.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import time
import urllib.request
from typing import Iterator, Optional

__all__ = [
    "StatusServer",
    "fetch_status",
    "iter_status_events",
    "render_service_status",
    "watch",
]


class StatusServer:
    """Polling-JSON + SSE endpoint for one :class:`CampaignService`."""

    def __init__(
        self, service, host: str, port: int, *, sse_interval_s: float = 1.0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.sse_interval_s = sse_interval_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set[asyncio.Task] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # SSE subscribers stream until *they* hang up; at service stop we
        # hang up on them instead of leaking their handler tasks
        for task in list(self._conns):
            task.cancel()
        await asyncio.gather(*self._conns, return_exceptions=True)
        self._conns.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            request = await reader.readline()
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain request headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if path.startswith("/events"):
                await self._serve_events(writer)
            elif path.startswith("/status"):
                self._respond_json(writer, self.service._status_unlocked())
            else:
                self._respond_json(
                    writer,
                    {"routes": ["/status", "/events"]},
                    status="404 Not Found",
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            if task is not None:
                self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):  # pragma: no cover
                pass

    def _respond_json(
        self, writer: asyncio.StreamWriter, payload: dict, *, status: str = "200 OK"
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )

    async def _serve_events(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        while not writer.is_closing():
            body = json.dumps(self.service._status_unlocked(), sort_keys=True)
            writer.write(f"event: status\ndata: {body}\n\n".encode("utf-8"))
            await writer.drain()
            await asyncio.sleep(self.sse_interval_s)


# -- client side -----------------------------------------------------------------
def fetch_status(host: str, port: int, *, timeout_s: float = 10.0) -> dict:
    """One ``GET /status`` poll; returns the parsed snapshot."""
    with urllib.request.urlopen(
        f"http://{host}:{port}/status", timeout=timeout_s
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def iter_status_events(
    host: str, port: int, *, timeout_s: Optional[float] = None
) -> Iterator[dict]:
    """Subscribe to ``GET /events``; yields one snapshot per SSE event.

    Runs until the server closes the stream (service stopped) or the
    optional socket timeout fires.
    """
    sock = socket.create_connection((host, port), timeout=timeout_s)
    try:
        sock.sendall(
            f"GET /events HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        fh = sock.makefile("rb")
        while True:  # skip response headers
            line = fh.readline()
            if not line:
                return
            if line in (b"\r\n", b"\n"):
                break
        for raw in fh:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("data: "):
                yield json.loads(line[len("data: "):])
    finally:
        sock.close()


def render_service_status(snapshot: dict) -> str:
    """The live-service counterpart of ``render_campaign_status``."""
    service = snapshot.get("service", {})
    scheduler = snapshot.get("scheduler", {})
    points = scheduler.get("points", {})
    lines = [
        f"campaign service @ {service.get('store', '?')}",
        (
            f"  uptime: {service.get('uptime_s', 0.0):.1f}s"
            f"  sealed: {'yes' if service.get('sealed') else 'no'}"
            f"  connections: {service.get('connections', 0)}"
        ),
        (
            f"  points: {points.get('done', 0)}/{points.get('total', 0)} done,"
            f" {points.get('leased', 0)} leased,"
            f" {points.get('pending', 0)} pending,"
            f" {points.get('failed', 0)} failed"
        ),
    ]
    for tenant, counts in sorted(scheduler.get("tenants", {}).items()):
        quota = f" (quota {counts['quota']})" if "quota" in counts else ""
        lines.append(
            f"  tenant {tenant}: {counts.get('done', 0)} done,"
            f" {counts.get('leased', 0)} leased,"
            f" {counts.get('pending', 0)} pending{quota}"
        )
    for worker, info in sorted(scheduler.get("workers", {}).items()):
        leases = ", ".join(d[:8] for d in info.get("leases", [])) or "idle"
        lines.append(f"  worker {worker}: {leases}")
    for digest, info in sorted(scheduler.get("leases", {}).items()):
        lines.append(
            f"  lease {digest[:8]}: {info.get('worker')}"
            f" expires in {info.get('expires_in_s', 0.0):.1f}s"
        )
    for digest, info in sorted(scheduler.get("failed_points", {}).items()):
        lines.append(
            f"  FAILED {info.get('label')} [{info.get('kind')}]:"
            f" {info.get('error')}"
        )
    counters = scheduler.get("counters", {})
    if counters:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        lines.append(f"  counters: {rendered}")
    return "\n".join(lines)


def watch(
    host: str,
    port: int,
    *,
    interval_s: float = 1.0,
    stream=None,
    max_updates: Optional[int] = None,
) -> int:
    """Poll and render status until the campaign drains; CLI backend.

    Returns the number of failed points seen in the final snapshot (so
    ``repro campaign watch`` can exit non-zero on failures).  Stops when
    the service is sealed with nothing pending or leased, when the
    service goes away, or after ``max_updates`` polls.
    """
    stream = stream or sys.stdout
    updates = 0
    snapshot: dict = {}
    while True:
        try:
            snapshot = fetch_status(host, port)
        except (ConnectionError, OSError):
            print("service is gone; stopping watch", file=stream)
            break
        print(render_service_status(snapshot), file=stream)
        print("--", file=stream)
        updates += 1
        points = snapshot.get("scheduler", {}).get("points", {})
        drained = (
            points.get("pending", 0) == 0 and points.get("leased", 0) == 0
        )
        if snapshot.get("service", {}).get("sealed") and drained:
            break
        if max_updates is not None and updates >= max_updates:
            break
        time.sleep(interval_s)
    return len(snapshot.get("scheduler", {}).get("failed_points", {}))
