"""Content-addressed on-disk result store for sweep campaigns.

A campaign is hundreds of independent simulations; this store makes every
completed point durable the moment it finishes, so a crashed worker, a
killed process or a dropped SSH session never throws away finished work.

One JSON artifact per completed :class:`~repro.config.SimulationConfig`,
keyed by a **stable config digest**: the SHA-256 of the config's canonical
JSON form (every dataclass field, sorted keys) together with the store
schema version.  The seed is a config field, so distinct seeds are distinct
points; two configs that would produce bit-identical runs map to the same
artifact.  Writes go to a temporary file in the same directory followed by
``os.replace`` — an artifact is either absent or complete, never torn,
even when the writing worker is killed mid-write.

Alongside the artifacts lives ``manifest.json``, an index of every point a
campaign has touched: completed points, their attempt counts, and points
that exhausted their retries (recorded as structured failures instead of
aborting the sweep — see :class:`PointFailure`).

**Concurrent writers.**  Artifact writes are already safe under any number
of writers (digests are disjoint and writes are atomic rename), but the
manifest is a single mutable index.  Two mechanisms keep it sound when
more than one process feeds a store (the distributed campaign service,
:mod:`repro.campaign.service`, with N network workers):

* an **append-only journal** (``journal/<writer>.jsonl``): each writer
  owns one file and only ever appends whole LDJSON records to it, so
  writers never contend; a **single compactor**
  (:meth:`ResultStore.compact_manifest`) folds un-consumed journal
  records into ``manifest.json`` atomically, tracking per-writer offsets
  in the manifest so a record is applied exactly once;
* :meth:`ResultStore.manifest_rebuild` reconstructs the index purely from
  the on-disk artifacts (plus a journal replay for artifact-less
  failures) — the recovery path for a torn or lost manifest.

``SCHEMA_VERSION`` guards resumption across code changes: bump it whenever
the serialized :class:`~repro.metrics.stats.RunResult` shape (or anything
that feeds the digest) changes meaning.  A store written under a different
schema version refuses to resume (:class:`StoreSchemaError`) rather than
silently mixing incompatible artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.metrics.stats import RunResult

__all__ = [
    "SCHEMA_VERSION",
    "StoreSchemaError",
    "PointFailure",
    "StoredPoint",
    "ResultStore",
    "config_digest",
    "config_to_json",
    "config_from_json",
    "result_to_json",
    "result_from_json",
    "new_writer_id",
]

#: store schema version — bump when the serialized RunResult/config shape
#: changes meaning; old artifacts then refuse to resume instead of mixing
SCHEMA_VERSION = 1

#: SimulationConfig fields whose JSON (list) form must be restored to the
#: nested-tuple form the frozen dataclass uses, so a round-tripped config
#: compares equal to the original
_TUPLE_FIELDS = ("failed_links", "length_mix", "traffic_mix")

#: flat tuple-of-int fields (no nesting) restored the same way
_FLAT_TUPLE_FIELDS = ("dims", "link_latencies")

#: fields elided from the canonical JSON form when they hold their default
#: value.  These were added after artifacts existed in the wild: dropping
#: the defaulted keys keeps every pre-existing config digest (and thus the
#: campaign store's content addressing) byte-stable, while configs that
#: actually exercise the new knobs get distinct digests.
_ELIDE_AT_DEFAULT = (("topology", "torus"), ("dims", ()), ("link_latencies", ()))


class StoreSchemaError(ReproError):
    """A store artifact/manifest was written under a different schema."""


@dataclass
class PointFailure:
    """A sweep point that exhausted its retries, recorded — not raised.

    Campaigns degrade gracefully: the failure lands in the manifest (and on
    :attr:`~repro.metrics.sweep.SweepResult.failures`) while every other
    point keeps running.
    """

    label: str
    digest: str
    load: float
    seed: int
    error: str
    attempts: int
    kind: str = "error"  #: "error" (worker raised) or "timeout" (killed)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "PointFailure":
        return cls(**data)


@dataclass
class StoredPoint:
    """One completed artifact loaded back from the store."""

    digest: str
    config: SimulationConfig
    result: RunResult
    obs: Optional[dict]


def config_to_json(config: SimulationConfig) -> dict:
    """Canonical JSON-able form of a config (tuples become lists).

    Late-addition fields still holding their defaults are elided (see
    ``_ELIDE_AT_DEFAULT``) so digests of pre-existing configs never move.
    """
    data = dataclasses.asdict(config)
    for name, default in _ELIDE_AT_DEFAULT:
        if data.get(name) == default:
            del data[name]
    return data


def config_from_json(data: dict) -> SimulationConfig:
    """Rebuild a config, restoring the nested-tuple fields JSON flattened."""
    data = dict(data)
    for name in _TUPLE_FIELDS:
        if name in data:
            data[name] = tuple(tuple(entry) for entry in data[name])
    for name in _FLAT_TUPLE_FIELDS:
        if name in data:
            data[name] = tuple(data[name])
    return SimulationConfig(**data)


def result_to_json(result: RunResult) -> dict:
    """JSON-able form of a run result (config nested in canonical form)."""
    payload = dataclasses.asdict(result)
    payload["config"] = config_to_json(result.config)
    return payload


def result_from_json(data: dict) -> RunResult:
    """Rebuild a run result bit-identically (JSON round-trips floats exactly)."""
    data = dict(data)
    config = config_from_json(data.pop("config"))
    return RunResult(config=config, **data)


def config_digest(
    config: SimulationConfig, schema_version: int = SCHEMA_VERSION
) -> str:
    """Stable content digest keying a point's artifact.

    Canonical JSON (sorted keys, no whitespace) over every config field
    plus the schema version; the seed is a config field, so it is part of
    the key.  Stable across processes and sessions — ``PYTHONHASHSEED``
    does not enter.
    """
    payload = json.dumps(
        {"schema_version": schema_version, "config": config_to_json(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write-then-rename: the file at ``path`` is never observably torn."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def new_writer_id() -> str:
    """A journal writer identity unique across hosts, processes and restarts.

    Uniqueness matters: a journal file is append-only *per writer*, and the
    compactor tracks a consumed-record offset per writer id — a reused id
    would replay (or skip) another process's records.
    """
    host = socket.gethostname().split(".", 1)[0] or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class ResultStore:
    """Directory of completed-point artifacts plus the campaign manifest.

    Layout::

        <root>/manifest.json          index: done points, failures, counters
        <root>/points/<digest>.json   one artifact per completed config
        <root>/points/<digest>.err.json   last worker error (transient)
        <root>/journal/<writer>.jsonl append-only per-writer event journal

    Safe for one writer per artifact (digests are disjoint across points)
    plus any number of readers; all writes are atomic rename.  Concurrent
    manifest updates go through the journal + single-writer compaction
    (see the module docstring).
    """

    def __init__(
        self, root: str | Path, *, schema_version: int = SCHEMA_VERSION
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.points_dir = self.root / "points"
        self.points_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / "manifest.json"
        self.journal_dir = self.root / "journal"

    # -- artifacts ---------------------------------------------------------------
    def digest(self, config: SimulationConfig) -> str:
        return config_digest(config, self.schema_version)

    def point_path(self, digest: str) -> Path:
        return self.points_dir / f"{digest}.json"

    def error_path(self, digest: str) -> Path:
        return self.points_dir / f"{digest}.err.json"

    def has(self, config: SimulationConfig) -> bool:
        """Is a schema-compatible artifact present for this config?"""
        path = self.point_path(self.digest(config))
        if not path.exists():
            return False
        try:
            return self._read_artifact(path)["schema_version"] == self.schema_version
        except (json.JSONDecodeError, KeyError, OSError):
            return False

    def load(self, config: SimulationConfig) -> StoredPoint:
        """Load a completed point; refuses schema-incompatible artifacts."""
        digest = self.digest(config)
        data = self._read_artifact(self.point_path(digest))
        found = data.get("schema_version")
        if found != self.schema_version:
            raise StoreSchemaError(
                f"artifact {digest} was written under schema version "
                f"{found}; this store expects {self.schema_version} — "
                f"rerun the point (or `repro campaign clean --all`)"
            )
        return StoredPoint(
            digest=digest,
            config=config_from_json(data["config"]),
            result=result_from_json(data["result"]),
            obs=data.get("obs"),
        )

    def write(
        self,
        config: SimulationConfig,
        result: RunResult,
        obs: Optional[dict] = None,
    ) -> str:
        """Persist a completed point atomically; returns its digest."""
        digest = self.digest(config)
        _atomic_write_json(
            self.point_path(digest),
            {
                "schema_version": self.schema_version,
                "digest": digest,
                "label": config.label(),
                "config": config_to_json(config),
                "result": result_to_json(result),
                "obs": obs,
            },
        )
        return digest

    def read_artifact(self, digest: str) -> dict:
        """The raw JSON payload of a completed point's artifact.

        This is what a network worker ships back to the campaign service:
        re-serializing it with sorted keys reproduces the on-disk bytes
        exactly, so a remotely-executed point lands in the server's store
        bit-identical to a locally-executed one.
        """
        return self._read_artifact(self.point_path(digest))

    def write_artifact(self, payload: dict) -> str:
        """Persist an artifact payload produced elsewhere; returns its digest.

        Validates that the payload was written under this store's schema
        version and that its recorded digest matches the digest recomputed
        from the embedded config — a corrupted or mis-keyed shipment is
        refused instead of poisoning the store.
        """
        found = payload.get("schema_version")
        if found != self.schema_version:
            raise StoreSchemaError(
                f"shipped artifact carries schema version {found}; this "
                f"store expects {self.schema_version}"
            )
        config = config_from_json(payload["config"])
        digest = self.digest(config)
        if payload.get("digest") != digest:
            raise StoreSchemaError(
                f"shipped artifact digest {payload.get('digest')!r} does not "
                f"match the digest {digest!r} of its embedded config"
            )
        _atomic_write_json(self.point_path(digest), payload)
        return digest

    def write_error(self, digest: str, error: str, trace: str) -> None:
        """Record a worker-side failure for the parent to pick up."""
        _atomic_write_json(
            self.error_path(digest), {"error": error, "trace": trace}
        )

    def read_error(self, digest: str) -> Optional[dict]:
        """The last recorded worker error for a point, consumed on read."""
        path = self.error_path(digest)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        path.unlink(missing_ok=True)
        return data

    @staticmethod
    def _read_artifact(path: Path) -> dict:
        return json.loads(path.read_text())

    # -- manifest ----------------------------------------------------------------
    def _empty_manifest(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "points": {},
            "counters": {},
        }

    def load_manifest(self) -> dict:
        """The campaign index; refuses manifests from another schema."""
        if not self.manifest_path.exists():
            return self._empty_manifest()
        manifest = json.loads(self.manifest_path.read_text())
        found = manifest.get("schema_version")
        if found != self.schema_version:
            raise StoreSchemaError(
                f"store at {self.root} was written under schema version "
                f"{found}; this code expects {self.schema_version} — "
                f"start a fresh store or `repro campaign clean --all`"
            )
        return manifest

    def save_manifest(self, manifest: dict) -> None:
        """Persist the index, stamping campaign wall-clock bookkeeping.

        ``started_at`` is set on the first save and never moved;
        ``updated_at`` tracks the latest save — their difference is the
        elapsed wall-clock ``repro campaign status`` reports.
        """
        now = time.time()
        manifest.setdefault("started_at", now)
        manifest["updated_at"] = now
        _atomic_write_json(self.manifest_path, manifest)

    # -- journal: append-only records for concurrent writers ---------------------
    def journal_append(self, writer: str, record: dict) -> None:
        """Append one event record to ``writer``'s journal file.

        Each writer owns its file exclusively (see :func:`new_writer_id`),
        so appends from N processes never interleave bytes.  Records are
        one LDJSON line each; a crash mid-append can tear at most the
        final line, which readers treat as absent.
        """
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.journal_dir / f"{writer}.jsonl", "a") as fh:
            fh.write(line + "\n")
            fh.flush()

    def journal_writers(self) -> list[str]:
        """Writer ids that have journal files in this store, sorted."""
        if not self.journal_dir.is_dir():
            return []
        return sorted(p.stem for p in self.journal_dir.glob("*.jsonl"))

    def journal_records(self, writer: str) -> list[dict]:
        """All intact records of one writer's journal, in append order.

        Parsing stops at the first undecodable line: only the tail of an
        append-only file can be torn (a crash mid-write), and a writer id
        is never reused, so nothing valid can follow a torn line.
        """
        path = self.journal_dir / f"{writer}.jsonl"
        try:
            text = path.read_text()
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return records

    @staticmethod
    def _apply_journal_record(manifest: dict, record: dict) -> None:
        """Fold one journal event into the manifest index (idempotent ops).

        ``done`` records are terminal: a later ``failed`` for the same
        digest (a stale report from a worker whose lease was reclaimed)
        never downgrades a completed point.
        """
        op = record.get("op")
        points = manifest.setdefault("points", {})
        counters = manifest.setdefault("counters", {})
        if op in ("done", "failed"):
            entry = points.setdefault(
                record["digest"],
                {
                    "label": record.get("label"),
                    "load": record.get("load"),
                    "seed": record.get("seed"),
                },
            )
            if op == "done":
                entry["status"] = "done"
                entry.pop("error", None)
                entry.pop("kind", None)
                counters["executed"] = counters.get("executed", 0) + 1
            elif entry.get("status") != "done":
                entry["status"] = "failed"
                entry["error"] = record.get("error", "")
                entry["kind"] = record.get("kind", "error")
                counters["failures"] = counters.get("failures", 0) + 1
            if record.get("attempts") is not None:
                entry["attempts"] = record["attempts"]
            if record.get("worker") is not None:
                entry["worker"] = record["worker"]
        elif op == "count":
            name = record["name"]
            counters[name] = counters.get(name, 0) + record.get("amount", 1)

    def compact_manifest(self) -> dict:
        """Fold new journal records into the manifest (single-writer only).

        Exactly one process may compact a store at a time — the campaign
        service's scheduler process in distributed runs.  Per-writer
        record offsets live in the manifest (``journal_offsets``), so a
        record is applied exactly once across any number of compactions;
        journal files themselves are never truncated (their writers may
        still hold them open).
        """
        manifest = self.load_manifest()
        offsets = manifest.setdefault("journal_offsets", {})
        for writer in self.journal_writers():
            records = self.journal_records(writer)
            start = offsets.get(writer, 0)
            for record in records[start:]:
                self._apply_journal_record(manifest, record)
            offsets[writer] = max(start, len(records))
        self.save_manifest(manifest)
        return manifest

    def manifest_rebuild(self) -> dict:
        """Reconstruct the manifest index from the on-disk artifacts.

        The recovery path for a torn, corrupted or deleted manifest: every
        schema-compatible artifact becomes a ``done`` entry (ground truth —
        artifacts are atomic, so each is either complete or absent), then
        the whole journal is replayed on top to restore attempt counts,
        counters and artifact-less failure entries.  Unreadable artifacts
        are skipped and counted (``counters["corrupt_artifacts"]``), never
        fatal.  Replaces ``manifest.json`` atomically and returns it.
        """
        manifest = self._empty_manifest()
        points = manifest["points"]
        counters = manifest["counters"]
        corrupt = 0
        for path in sorted(self.points_dir.glob("*.json")):
            if path.name.endswith(".err.json"):
                continue
            try:
                data = json.loads(path.read_text())
                if data.get("schema_version") != self.schema_version:
                    continue
                config = config_from_json(data["config"])
                digest = data.get("digest") or path.stem
            except (json.JSONDecodeError, KeyError, TypeError, OSError):
                corrupt += 1
                continue
            points[digest] = {
                "label": config.label(),
                "load": config.load,
                "seed": config.seed,
                "status": "done",
            }
        offsets = {}
        for writer in self.journal_writers():
            records = self.journal_records(writer)
            for record in records:
                if record.get("op") == "done":
                    # completion counters replay; the entry itself came
                    # from the artifact scan (or the artifact is gone, in
                    # which case the point must rerun, not appear done)
                    entry = points.get(record.get("digest"))
                    if entry is None:
                        continue
                    counters["executed"] = counters.get("executed", 0) + 1
                    if record.get("attempts") is not None:
                        entry["attempts"] = record["attempts"]
                    if record.get("worker") is not None:
                        entry["worker"] = record["worker"]
                else:
                    self._apply_journal_record(manifest, record)
            offsets[writer] = len(records)
        manifest["journal_offsets"] = offsets
        if corrupt:
            counters["corrupt_artifacts"] = corrupt
        self.save_manifest(manifest)
        return manifest

    # -- maintenance -------------------------------------------------------------
    def clean(self, *, all_points: bool = False) -> dict:
        """Drop failed entries (and stale tmp/err files) so they rerun.

        With ``all_points=True`` the artifacts and manifest are removed
        entirely.  Returns ``{"failed_dropped": n, "artifacts_dropped": n}``.
        """
        dropped_failed = 0
        dropped_artifacts = 0
        for stale in self.points_dir.glob(".*.tmp"):
            stale.unlink(missing_ok=True)
        for err in self.points_dir.glob("*.err.json"):
            err.unlink(missing_ok=True)
        if all_points:
            for artifact in self.points_dir.glob("*.json"):
                artifact.unlink(missing_ok=True)
                dropped_artifacts += 1
            if self.journal_dir.is_dir():
                for journal in self.journal_dir.glob("*.jsonl"):
                    journal.unlink(missing_ok=True)
            self.manifest_path.unlink(missing_ok=True)
            return {
                "failed_dropped": 0,
                "artifacts_dropped": dropped_artifacts,
            }
        try:
            manifest = self.load_manifest()
        except StoreSchemaError:
            # incompatible manifest: cleaning failed entries is meaningless
            raise
        points = manifest.get("points", {})
        for digest in [d for d, p in points.items() if p.get("status") == "failed"]:
            del points[digest]
            dropped_failed += 1
        self.save_manifest(manifest)
        return {
            "failed_dropped": dropped_failed,
            "artifacts_dropped": dropped_artifacts,
        }
