"""Content-addressed on-disk result store for sweep campaigns.

A campaign is hundreds of independent simulations; this store makes every
completed point durable the moment it finishes, so a crashed worker, a
killed process or a dropped SSH session never throws away finished work.

One JSON artifact per completed :class:`~repro.config.SimulationConfig`,
keyed by a **stable config digest**: the SHA-256 of the config's canonical
JSON form (every dataclass field, sorted keys) together with the store
schema version.  The seed is a config field, so distinct seeds are distinct
points; two configs that would produce bit-identical runs map to the same
artifact.  Writes go to a temporary file in the same directory followed by
``os.replace`` — an artifact is either absent or complete, never torn,
even when the writing worker is killed mid-write.

Alongside the artifacts lives ``manifest.json``, an index of every point a
campaign has touched: completed points, their attempt counts, and points
that exhausted their retries (recorded as structured failures instead of
aborting the sweep — see :class:`PointFailure`).

``SCHEMA_VERSION`` guards resumption across code changes: bump it whenever
the serialized :class:`~repro.metrics.stats.RunResult` shape (or anything
that feeds the digest) changes meaning.  A store written under a different
schema version refuses to resume (:class:`StoreSchemaError`) rather than
silently mixing incompatible artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.metrics.stats import RunResult

__all__ = [
    "SCHEMA_VERSION",
    "StoreSchemaError",
    "PointFailure",
    "StoredPoint",
    "ResultStore",
    "config_digest",
    "config_to_json",
    "config_from_json",
    "result_to_json",
    "result_from_json",
]

#: store schema version — bump when the serialized RunResult/config shape
#: changes meaning; old artifacts then refuse to resume instead of mixing
SCHEMA_VERSION = 1

#: SimulationConfig fields whose JSON (list) form must be restored to the
#: nested-tuple form the frozen dataclass uses, so a round-tripped config
#: compares equal to the original
_TUPLE_FIELDS = ("failed_links", "length_mix", "traffic_mix")


class StoreSchemaError(ReproError):
    """A store artifact/manifest was written under a different schema."""


@dataclass
class PointFailure:
    """A sweep point that exhausted its retries, recorded — not raised.

    Campaigns degrade gracefully: the failure lands in the manifest (and on
    :attr:`~repro.metrics.sweep.SweepResult.failures`) while every other
    point keeps running.
    """

    label: str
    digest: str
    load: float
    seed: int
    error: str
    attempts: int
    kind: str = "error"  #: "error" (worker raised) or "timeout" (killed)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "PointFailure":
        return cls(**data)


@dataclass
class StoredPoint:
    """One completed artifact loaded back from the store."""

    digest: str
    config: SimulationConfig
    result: RunResult
    obs: Optional[dict]


def config_to_json(config: SimulationConfig) -> dict:
    """Canonical JSON-able form of a config (tuples become lists)."""
    return dataclasses.asdict(config)


def config_from_json(data: dict) -> SimulationConfig:
    """Rebuild a config, restoring the nested-tuple fields JSON flattened."""
    data = dict(data)
    for name in _TUPLE_FIELDS:
        if name in data:
            data[name] = tuple(tuple(entry) for entry in data[name])
    return SimulationConfig(**data)


def result_to_json(result: RunResult) -> dict:
    """JSON-able form of a run result (config nested in canonical form)."""
    payload = dataclasses.asdict(result)
    payload["config"] = config_to_json(result.config)
    return payload


def result_from_json(data: dict) -> RunResult:
    """Rebuild a run result bit-identically (JSON round-trips floats exactly)."""
    data = dict(data)
    config = config_from_json(data.pop("config"))
    return RunResult(config=config, **data)


def config_digest(
    config: SimulationConfig, schema_version: int = SCHEMA_VERSION
) -> str:
    """Stable content digest keying a point's artifact.

    Canonical JSON (sorted keys, no whitespace) over every config field
    plus the schema version; the seed is a config field, so it is part of
    the key.  Stable across processes and sessions — ``PYTHONHASHSEED``
    does not enter.
    """
    payload = json.dumps(
        {"schema_version": schema_version, "config": config_to_json(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write-then-rename: the file at ``path`` is never observably torn."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


class ResultStore:
    """Directory of completed-point artifacts plus the campaign manifest.

    Layout::

        <root>/manifest.json          index: done points, failures, counters
        <root>/points/<digest>.json   one artifact per completed config
        <root>/points/<digest>.err.json   last worker error (transient)

    Safe for one writer per artifact (digests are disjoint across points)
    plus any number of readers; all writes are atomic rename.
    """

    def __init__(
        self, root: str | Path, *, schema_version: int = SCHEMA_VERSION
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.points_dir = self.root / "points"
        self.points_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / "manifest.json"

    # -- artifacts ---------------------------------------------------------------
    def digest(self, config: SimulationConfig) -> str:
        return config_digest(config, self.schema_version)

    def point_path(self, digest: str) -> Path:
        return self.points_dir / f"{digest}.json"

    def error_path(self, digest: str) -> Path:
        return self.points_dir / f"{digest}.err.json"

    def has(self, config: SimulationConfig) -> bool:
        """Is a schema-compatible artifact present for this config?"""
        path = self.point_path(self.digest(config))
        if not path.exists():
            return False
        try:
            return self._read_artifact(path)["schema_version"] == self.schema_version
        except (json.JSONDecodeError, KeyError, OSError):
            return False

    def load(self, config: SimulationConfig) -> StoredPoint:
        """Load a completed point; refuses schema-incompatible artifacts."""
        digest = self.digest(config)
        data = self._read_artifact(self.point_path(digest))
        found = data.get("schema_version")
        if found != self.schema_version:
            raise StoreSchemaError(
                f"artifact {digest} was written under schema version "
                f"{found}; this store expects {self.schema_version} — "
                f"rerun the point (or `repro campaign clean --all`)"
            )
        return StoredPoint(
            digest=digest,
            config=config_from_json(data["config"]),
            result=result_from_json(data["result"]),
            obs=data.get("obs"),
        )

    def write(
        self,
        config: SimulationConfig,
        result: RunResult,
        obs: Optional[dict] = None,
    ) -> str:
        """Persist a completed point atomically; returns its digest."""
        digest = self.digest(config)
        _atomic_write_json(
            self.point_path(digest),
            {
                "schema_version": self.schema_version,
                "digest": digest,
                "label": config.label(),
                "config": config_to_json(config),
                "result": result_to_json(result),
                "obs": obs,
            },
        )
        return digest

    def write_error(self, digest: str, error: str, trace: str) -> None:
        """Record a worker-side failure for the parent to pick up."""
        _atomic_write_json(
            self.error_path(digest), {"error": error, "trace": trace}
        )

    def read_error(self, digest: str) -> Optional[dict]:
        """The last recorded worker error for a point, consumed on read."""
        path = self.error_path(digest)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        path.unlink(missing_ok=True)
        return data

    @staticmethod
    def _read_artifact(path: Path) -> dict:
        return json.loads(path.read_text())

    # -- manifest ----------------------------------------------------------------
    def _empty_manifest(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "points": {},
            "counters": {},
        }

    def load_manifest(self) -> dict:
        """The campaign index; refuses manifests from another schema."""
        if not self.manifest_path.exists():
            return self._empty_manifest()
        manifest = json.loads(self.manifest_path.read_text())
        found = manifest.get("schema_version")
        if found != self.schema_version:
            raise StoreSchemaError(
                f"store at {self.root} was written under schema version "
                f"{found}; this code expects {self.schema_version} — "
                f"start a fresh store or `repro campaign clean --all`"
            )
        return manifest

    def save_manifest(self, manifest: dict) -> None:
        _atomic_write_json(self.manifest_path, manifest)

    # -- maintenance -------------------------------------------------------------
    def clean(self, *, all_points: bool = False) -> dict:
        """Drop failed entries (and stale tmp/err files) so they rerun.

        With ``all_points=True`` the artifacts and manifest are removed
        entirely.  Returns ``{"failed_dropped": n, "artifacts_dropped": n}``.
        """
        dropped_failed = 0
        dropped_artifacts = 0
        for stale in self.points_dir.glob(".*.tmp"):
            stale.unlink(missing_ok=True)
        for err in self.points_dir.glob("*.err.json"):
            err.unlink(missing_ok=True)
        if all_points:
            for artifact in self.points_dir.glob("*.json"):
                artifact.unlink(missing_ok=True)
                dropped_artifacts += 1
            self.manifest_path.unlink(missing_ok=True)
            return {
                "failed_dropped": 0,
                "artifacts_dropped": dropped_artifacts,
            }
        try:
            manifest = self.load_manifest()
        except StoreSchemaError:
            # incompatible manifest: cleaning failed entries is meaningless
            raise
        points = manifest.get("points", {})
        for digest in [d for d, p in points.items() if p.get("status") == "failed"]:
            del points[digest]
            dropped_failed += 1
        self.save_manifest(manifest)
        return {
            "failed_dropped": dropped_failed,
            "artifacts_dropped": dropped_artifacts,
        }
