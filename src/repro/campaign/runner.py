"""Checkpointed, fault-tolerant campaign execution.

:class:`CampaignRunner` wraps the sweep paths of :mod:`repro.metrics` with
the durability a multi-hundred-point figure regeneration needs:

* every completed point is persisted to a :class:`~repro.campaign.store.
  ResultStore` the moment it finishes (written atomically *by the worker
  process itself*, so a parent crash loses nothing);
* each point runs in its own killable worker process with a configurable
  **wall-clock timeout** — a hung simulation is terminated and respawned
  instead of wedging the whole sweep;
* failures **retry with exponential backoff**, and a point that exhausts
  its retries degrades to a structured
  :class:`~repro.campaign.store.PointFailure` in the manifest while every
  sibling point keeps running;
* re-invoking the same campaign **resumes**: points already in the store
  are loaded instead of re-run.  Simulations are deterministic given their
  config (seed included), so a resumed campaign's merged
  :class:`~repro.metrics.sweep.SweepResult` is bit-identical to an
  uninterrupted run's.

Both fresh and resumed points are materialized *through the store* (the
worker writes the artifact, the parent loads it back), so the merged sweep
never depends on which side of an interruption a point ran on.

Retry/timeout/resume activity is counted on a live
:class:`~repro.obs.registry.MetricsRegistry` (``campaign/*`` counters) and
mirrored into the manifest, where ``repro campaign status`` reads it.
"""

from __future__ import annotations

import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _sentinel_wait
from typing import Callable, Optional, Sequence

from repro.config import SimulationConfig
from repro.campaign.store import PointFailure, ResultStore, StoredPoint
from repro.faults import active_faults, first_trigger, point_fault_matches
from repro.metrics.stats import RunResult
from repro.metrics.sweep import SweepResult, obs_rollup
from repro.obs.registry import MetricsRegistry

__all__ = ["CampaignRunner", "CampaignSweep"]

#: how long a hang-point fault sleeps — far past any sane per-point timeout
_HANG_SECONDS = 3600.0

#: upper bound on one scheduler wait; the real wake signal is the worker
#: process sentinels (zero-CPU blocking wait, instant wake on child exit),
#: this only caps how stale a timeout/backoff deadline check can get
_MAX_WAIT_SECONDS = 0.25


def _apply_point_faults(config: SimulationConfig) -> None:
    """Arm the campaign-level injected faults (test-only; see repro.faults)."""
    faults = active_faults()
    if not faults:
        return
    label = config.label()
    if not point_fault_matches(label):
        return
    if "crash-point" in faults:
        raise RuntimeError(f"injected crash-point for {label}")
    if "flaky-point" in faults and first_trigger("flaky-point", label):
        raise RuntimeError(f"injected flaky-point (first attempt) for {label}")
    if "hang-point" in faults and first_trigger("hang-point", label):
        time.sleep(_HANG_SECONDS)


def _point_worker(
    store_root: str, schema_version: int, config: SimulationConfig
) -> None:
    """Run one point to completion and persist it (child-process entry).

    The worker writes the artifact itself — atomically — so the result is
    durable even if the parent dies before collecting it.  Failures land in
    a sidecar error file the parent consumes to label the retry.
    """
    store = ResultStore(store_root, schema_version=schema_version)
    digest = store.digest(config)
    try:
        _apply_point_faults(config)
        from repro.network.simulator import NetworkSimulator

        sim = NetworkSimulator(config)
        result = sim.run()
        store.write(config, result, sim.obs.snapshot())
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        store.write_error(
            digest, f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )
        sys.exit(1)


@dataclass
class _Task:
    index: int
    config: SimulationConfig
    digest: str
    attempts: int = 0
    eligible_at: float = 0.0  #: monotonic time before which it must not run


@dataclass
class _Running:
    task: _Task
    process: object
    deadline: Optional[float]


@dataclass
class CampaignSweep:
    """Outcome of one campaign sweep invocation.

    ``sweep`` holds the merged results of every *completed* point (resumed
    or freshly run) in load order; degraded points appear in ``failures``
    (and on ``sweep.failures``) instead of aborting the run.
    """

    sweep: SweepResult
    failures: list[PointFailure] = field(default_factory=list)
    resumed: int = 0  #: points skipped because the store already had them
    executed: int = 0  #: points run to completion this invocation
    remaining: int = 0  #: points not attempted (interrupted via max_points)


class CampaignRunner:
    """Drives configs through killable workers against a result store.

    Parameters
    ----------
    store:
        The :class:`~repro.campaign.store.ResultStore` (or a path to one).
    retries:
        Re-attempts per point after the first failure (default 2).
    backoff_s:
        Base of the exponential retry backoff: attempt *n* waits
        ``backoff_s * 2**(n-1)`` before respawning (default 0.25 s).
    timeout_s:
        Per-point wall-clock budget; a worker past it is killed and the
        attempt counts as a (retryable) timeout.  ``None`` disables.
    max_workers:
        Concurrent worker processes (default: cores - 1).
    max_points:
        Stop scheduling after this many fresh point executions — an
        explicit interruption hook used by the resume tests and the
        ``campaign_smoke`` CI stage.  ``None`` runs everything.
    registry:
        Live metrics registry for the ``campaign/*`` counters (a fresh one
        is created when omitted; never the null registry — campaign
        accounting is part of the durable record, not optional telemetry).
    """

    def __init__(
        self,
        store: ResultStore | str,
        *,
        retries: int = 2,
        backoff_s: float = 0.25,
        timeout_s: Optional[float] = None,
        max_workers: Optional[int] = None,
        max_points: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        from repro.metrics.parallel import _resolve_workers

        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.workers = _resolve_workers(max_workers)
        self.max_points = max_points
        self.registry = registry if registry is not None else MetricsRegistry()
        # fork keeps per-point spawns cheap; spawn is the portable fallback
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = get_context()

    # -- public API --------------------------------------------------------------
    def run_sweep(
        self,
        base: SimulationConfig,
        loads: Sequence[float],
        label: str = "",
        *,
        progress: Callable[[SimulationConfig, RunResult], None] | None = None,
    ) -> CampaignSweep:
        """Checkpointed drop-in for ``run_load_sweep[_parallel]``.

        Returns the merged sweep over every completed point; raises only on
        store-level problems (schema mismatch), never on point failures.
        """
        from repro.network.simulator import build_topology

        capacity = build_topology(base).capacity_flits_per_node_cycle
        configs = [base.replace(load=load) for load in loads]
        out = self.run_points(configs, progress=progress)
        completed: dict[int, StoredPoint] = out["completed"]
        done_loads = [loads[i] for i in sorted(completed)]
        results = [completed[i].result for i in sorted(completed)]
        snapshots = [completed[i].obs for i in sorted(completed)]
        sweep = SweepResult(
            label=label or base.label(),
            loads=done_loads,
            results=results,
            capacity=capacity,
            obs=obs_rollup(done_loads, snapshots),
            failures=list(out["failures"]),
        )
        return CampaignSweep(
            sweep=sweep,
            failures=out["failures"],
            resumed=out["resumed"],
            executed=out["executed"],
            remaining=out["remaining"],
        )

    def run_points(
        self,
        configs: Sequence[SimulationConfig],
        *,
        progress: Callable[[SimulationConfig, RunResult], None] | None = None,
    ) -> dict:
        """Run an arbitrary batch of configs through the store.

        Returns ``{"completed": {index: StoredPoint}, "failures": [...],
        "resumed": n, "executed": n, "remaining": n}``.
        """
        manifest = self.store.load_manifest()  # schema-checked
        points = manifest.setdefault("points", {})
        counters = manifest.setdefault("counters", {})
        self.registry.counter("campaign/points_total").inc(len(configs))

        completed: dict[int, StoredPoint] = {}
        failures: list[PointFailure] = []
        tasks: deque[_Task] = deque()
        resumed = 0
        for index, config in enumerate(configs):
            digest = self.store.digest(config)
            if self.store.has(config):
                completed[index] = self.store.load(config)
                self._mark(points, digest, config, status="done")
                resumed += 1
            else:
                tasks.append(_Task(index=index, config=config, digest=digest))
        if resumed:
            self.registry.counter("campaign/points_resumed").inc(resumed)
            counters["resumed"] = counters.get("resumed", 0) + resumed
        self.store.save_manifest(manifest)

        executed = 0
        started = 0
        running: list[_Running] = []
        waiting: list[_Task] = []
        skipped: list[_Task] = []  # fresh points beyond the max_points budget

        def budget_left() -> bool:
            return self.max_points is None or started < self.max_points

        while tasks or waiting or running:
            now = time.monotonic()
            still_waiting = []
            for task in waiting:
                if now >= task.eligible_at:
                    tasks.append(task)
                else:
                    still_waiting.append(task)
            waiting = still_waiting

            while tasks and len(running) < self.workers:
                task = tasks.popleft()
                if task.attempts == 0:
                    # retries always finish; only *fresh* points consume the
                    # interruption budget
                    if not budget_left():
                        skipped.append(task)
                        continue
                    started += 1
                running.append(self._spawn(task))

            if not running:
                if waiting:
                    # everything left is backing off: sleep to the deadline
                    time.sleep(
                        max(0.0, min(t.eligible_at for t in waiting) - now)
                    )
                    continue
                break

            progressed = False
            now = time.monotonic()
            for entry in list(running):
                task, process = entry.task, entry.process
                if process.is_alive():
                    if entry.deadline is not None and now >= entry.deadline:
                        self._kill(process)
                        running.remove(entry)
                        progressed = True
                        self.store.read_error(task.digest)  # drop stale sidecar
                        self._record_attempt_failure(
                            task,
                            error=(
                                f"point exceeded {self.timeout_s:g}s "
                                f"wall-clock timeout; worker killed"
                            ),
                            kind="timeout",
                            manifest=manifest,
                            tasks=waiting,
                            failures=failures,
                        )
                    continue
                process.join()
                running.remove(entry)
                progressed = True
                if self.store.has(task.config):
                    self.store.read_error(task.digest)  # drop stale sidecar
                    point = self.store.load(task.config)
                    completed[task.index] = point
                    executed += 1
                    self.registry.counter("campaign/points_executed").inc()
                    counters["executed"] = counters.get("executed", 0) + 1
                    self._mark(
                        points,
                        task.digest,
                        task.config,
                        status="done",
                        attempts=task.attempts,
                    )
                    self.store.save_manifest(manifest)
                    if progress is not None:
                        progress(task.config, point.result)
                else:
                    err = self.store.read_error(task.digest) or {}
                    message = err.get(
                        "error",
                        f"worker exited with code {process.exitcode} "
                        f"without writing a result",
                    )
                    self._record_attempt_failure(
                        task,
                        error=message,
                        kind="error",
                        manifest=manifest,
                        tasks=waiting,
                        failures=failures,
                    )
            if not progressed:
                # block until a worker exits (sentinel fires) or the next
                # deadline — timeout or backoff eligibility — comes due;
                # no polling, so an idle parent costs no worker CPU
                now = time.monotonic()
                due = [_MAX_WAIT_SECONDS]
                due.extend(
                    e.deadline - now
                    for e in running
                    if e.deadline is not None
                )
                due.extend(t.eligible_at - now for t in waiting)
                _sentinel_wait(
                    [e.process.sentinel for e in running],
                    timeout=max(0.0, min(due)),
                )

        remaining = len(tasks) + len(waiting) + len(skipped)
        self.store.save_manifest(manifest)
        return {
            "completed": completed,
            "failures": failures,
            "resumed": resumed,
            "executed": executed,
            "remaining": remaining,
        }

    # -- internals ---------------------------------------------------------------
    def _spawn(self, task: _Task) -> _Running:
        task.attempts += 1
        process = self._ctx.Process(
            target=_point_worker,
            args=(str(self.store.root), self.store.schema_version, task.config),
            daemon=True,
        )
        process.start()
        deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        return _Running(task=task, process=process, deadline=deadline)

    @staticmethod
    def _kill(process) -> None:
        process.terminate()
        process.join(0.5)
        if process.is_alive():  # pragma: no cover - stubborn worker
            process.kill()
            process.join()

    def _record_attempt_failure(
        self,
        task: _Task,
        *,
        error: str,
        kind: str,
        manifest: dict,
        tasks: list[_Task],
        failures: list[PointFailure],
    ) -> None:
        """Route a failed attempt to backoff-retry or terminal degradation."""
        counters = manifest.setdefault("counters", {})
        if kind == "timeout":
            self.registry.counter("campaign/timeouts").inc()
            counters["timeouts"] = counters.get("timeouts", 0) + 1
        if task.attempts <= self.retries:
            self.registry.counter("campaign/retries").inc()
            counters["retries"] = counters.get("retries", 0) + 1
            task.eligible_at = time.monotonic() + self.backoff_s * (
                2 ** (task.attempts - 1)
            )
            tasks.append(task)
            self.store.save_manifest(manifest)
            return
        failure = PointFailure(
            label=task.config.label(),
            digest=task.digest,
            load=task.config.load,
            seed=task.config.seed,
            error=error,
            attempts=task.attempts,
            kind=kind,
        )
        failures.append(failure)
        self.registry.counter("campaign/failures").inc()
        counters["failures"] = counters.get("failures", 0) + 1
        self._mark(
            manifest["points"],
            task.digest,
            task.config,
            status="failed",
            attempts=task.attempts,
            error=error,
            kind=kind,
        )
        self.store.save_manifest(manifest)

    @staticmethod
    def _mark(
        points: dict,
        digest: str,
        config: SimulationConfig,
        *,
        status: str,
        attempts: Optional[int] = None,
        error: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> None:
        entry = points.setdefault(
            digest,
            {"label": config.label(), "load": config.load, "seed": config.seed},
        )
        entry["status"] = status
        if attempts is not None:
            entry["attempts"] = attempts
        if error is not None:
            entry["error"] = error
        if kind is not None:
            entry["kind"] = kind
        elif status == "done":
            entry.pop("error", None)
            entry.pop("kind", None)
