"""Ablations of the design choices DESIGN.md calls out.

Four ablation runners, all comparing matched configurations on identical
workloads (same traffic RNG stream):

* :func:`run_teardown` — instant vs flit-by-flit recovery teardown.  The
  paper removes victims "flit-by-flit"; instant removal is the common
  simulator shortcut.  Measures whether the shortcut distorts results.
* :func:`run_selection` — the paper's straight-through-preferring channel
  selection vs uniform random selection.
* :func:`run_detection_interval` — how the paper's 50-cycle detection
  period trades detection latency against deadlock persistence.
* :func:`run_timeout_mode` — end-to-end comparison of true (knot)
  detection+recovery against timeout-heuristic recovery at several
  thresholds: throughput, recoveries performed, and how many of the
  heuristic's recoveries were unnecessary.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config
from repro.metrics.sweep import SweepResult
from repro.network.simulator import NetworkSimulator

__all__ = [
    "run_teardown",
    "run_selection",
    "run_detection_interval",
    "run_timeout_mode",
    "run_message_length",
    "run_granularity",
    "run_faults",
    "run_arbitration",
]


def run_teardown(
    scale: str = "bench", loads: Sequence[float] = (0.8, 1.2), **overrides
) -> ExperimentResult:
    """ABL-REC: instant vs flit-by-flit victim teardown."""
    base = scaled_config(scale, routing="dor", num_vcs=1, **overrides)
    sweeps = {}
    for mode in ("instant", "flit-by-flit"):
        sweeps[mode] = experiment_sweep(
            base.replace(recovery_teardown=mode), list(loads), label=mode
        )
    obs = {
        f"{mode}_total_deadlocks": float(sum(s.deadlock_counts))
        for mode, s in sweeps.items()
    }
    for mode, s in sweeps.items():
        obs[f"{mode}_peak_throughput"] = max(s.throughputs, default=0.0)
    return ExperimentResult(
        experiment_id="ABL-REC",
        description="Recovery teardown: instant vs flit-by-flit removal",
        sweeps=sweeps,
        observations=obs,
        notes=[
            "flit-by-flit is the paper's literal procedure; instant is the "
            "usual simulator shortcut — deadlock counts should be close"
        ],
    )


def run_selection(
    scale: str = "bench", loads: Sequence[float] = (0.5, 0.9), **overrides
) -> ExperimentResult:
    """ABL-SEL: straight-through-first vs random channel selection."""
    base = scaled_config(scale, routing="tfar", num_vcs=2, **overrides)
    sweeps = {}
    for policy in ("straight", "random"):
        sweeps[policy] = experiment_sweep(
            base.replace(selection=policy), list(loads), label=policy
        )
    obs = {}
    for policy, s in sweeps.items():
        obs[f"{policy}_peak_throughput"] = max(s.throughputs, default=0.0)
        obs[f"{policy}_total_deadlocks"] = float(sum(s.deadlock_counts))
        obs[f"{policy}_mean_latency"] = sum(
            r.avg_latency for r in s.results
        ) / len(s.results)
    return ExperimentResult(
        experiment_id="ABL-SEL",
        description="Channel selection policy: straight-through-first "
        "(paper default) vs uniform random",
        sweeps=sweeps,
        observations=obs,
    )


def run_detection_interval(
    scale: str = "bench",
    load: float = 1.0,
    intervals: Sequence[int] = (10, 50, 200, 1000),
    **overrides,
) -> ExperimentResult:
    """ABL-INT: detection period vs deadlock persistence and throughput."""
    base = scaled_config(scale, routing="dor", num_vcs=1, load=load, **overrides)
    sweeps = {}
    obs = {}
    for interval in intervals:
        cfg = base.replace(detection_interval=interval)
        sim = NetworkSimulator(cfg)
        result = sim.run()
        label = f"interval={interval}"
        sweeps[label] = SweepResult(
            label=label,
            loads=[load],
            results=[result],
            capacity=sim.topology.capacity_flits_per_node_cycle,
        )
        obs[f"i{interval}_deadlocks"] = float(result.deadlocks)
        obs[f"i{interval}_throughput"] = result.normalized_throughput(
            sim.topology.capacity_flits_per_node_cycle
        )
        obs[f"i{interval}_latency"] = result.avg_latency
    return ExperimentResult(
        experiment_id="ABL-INT",
        description="Deadlock-detection invocation period (paper: every 50 "
        "cycles) vs recovery responsiveness",
        sweeps=sweeps,
        observations=obs,
        notes=[
            "long periods leave knots wedged between detections: latency "
            "rises and fewer (but longer-lived) deadlocks are counted"
        ],
    )


def run_timeout_mode(
    scale: str = "bench",
    load: float = 1.0,
    thresholds: Sequence[int] = (100, 500, 2000),
    **overrides,
) -> ExperimentResult:
    """ABL-TIMEOUT: true-detection recovery vs timeout-heuristic recovery."""
    base = scaled_config(scale, routing="dor", num_vcs=1, load=load, **overrides)
    sweeps = {}
    obs = {}

    sim = NetworkSimulator(base.replace(detection_mode="knot"))
    truth = sim.run()
    cap = sim.topology.capacity_flits_per_node_cycle
    sweeps["true-detection"] = SweepResult(
        "true-detection", [load], [truth], capacity=cap
    )
    obs["true_throughput"] = truth.normalized_throughput(cap)
    obs["true_recoveries"] = float(truth.recovered)

    for t in thresholds:
        cfg = base.replace(detection_mode="timeout", timeout_threshold=t)
        sim = NetworkSimulator(cfg)
        result = sim.run()
        label = f"timeout={t}"
        sweeps[label] = SweepResult(label, [load], [result], capacity=cap)
        obs[f"t{t}_throughput"] = result.normalized_throughput(cap)
        obs[f"t{t}_recoveries"] = float(result.timeout_recoveries)
        obs[f"t{t}_unnecessary"] = float(result.unnecessary_recoveries)
        obs[f"t{t}_true_deadlocks_seen"] = float(result.deadlocks)
    return ExperimentResult(
        experiment_id="ABL-TIMEOUT",
        description="End-to-end: knot-based recovery vs timeout-presumed "
        "deadlock recovery (the schemes the paper critiques)",
        sweeps=sweeps,
        observations=obs,
        notes=[
            "small thresholds recover many merely-congested messages "
            "(unnecessary work); large thresholds let true deadlocks wedge "
            "the network between firings"
        ],
    )


def run_message_length(
    scale: str = "bench",
    load: float = 0.9,
    lengths: Sequence[int] = (4, 8, 16, 32),
    **overrides,
) -> ExperimentResult:
    """EXT-LEN: deadlock frequency vs message length at fixed buffer depth.

    The paper fixes 32-flit messages; this extension varies length with the
    2-flit buffers held constant, so longer messages hold proportionally
    more channels simultaneously — the same mechanism Figure 8 probes from
    the buffer side.  Load is flit-normalized, so all points offer the
    same flit rate.
    """
    base = scaled_config(scale, routing="dor", num_vcs=1, load=load, **overrides)
    sweeps = {}
    obs = {}
    for length in lengths:
        cfg = base.replace(message_length=length)
        sim = NetworkSimulator(cfg)
        result = sim.run()
        label = f"len={length}"
        sweeps[label] = SweepResult(
            label,
            [load],
            [result],
            capacity=sim.topology.capacity_flits_per_node_cycle,
        )
        obs[f"len{length}_norm_deadlocks"] = result.normalized_deadlocks
        obs[f"len{length}_avg_resource_set"] = result.avg_resource_set_size
        obs[f"len{length}_blocked_pct"] = 100 * result.avg_blocked_fraction
    return ExperimentResult(
        experiment_id="EXT-LEN",
        description="Message length vs deadlock formation (fixed 2-flit "
        "buffers; flit-normalized load)",
        sweeps=sweeps,
        observations=obs,
        notes=[
            "longer worms hold more channels each (resource sets grow with "
            "length) but fewer worms compete at the same flit rate; the "
            "message-normalized deadlock rate reflects both forces"
        ],
    )


def run_granularity(
    scale: str = "bench",
    load: float = 1.0,
    **overrides,
) -> ExperimentResult:
    """EXT-GRAN: channel- vs message-granularity deadlock analysis.

    At every detection instant, compares the exact CWG-knot verdict with
    the verdict of the coarser packet wait-for graph (Dally & Aoki), which
    some avoidance schemes reason about.  Counts how often message-level
    analysis sees cycles (or even knots) when no true deadlock exists —
    quantifying the paper's §2.3 "overly restrictive" remark.
    """
    from repro.core.detector import DeadlockDetector
    from repro.core.knots import find_knots
    from repro.core.pwfg import packet_wait_for_graph, pwfg_cycle_count

    base = scaled_config(
        scale, routing="tfar", num_vcs=1, load=load, **overrides
    )
    sim = NetworkSimulator(base)
    detections = 0
    pwfg_cyclic = 0
    pwfg_knotted = 0
    true_deadlocked = 0
    agreements = 0
    total = base.warmup_cycles + base.measure_cycles
    while sim.cycle < total:
        sim.step()
        if sim.cycle % base.detection_interval == 0:
            g = DeadlockDetector.build_cwg(sim)
            true_knots = find_knots(g.adjacency())
            p_adj = packet_wait_for_graph(g)
            p_cycles = pwfg_cycle_count(g, limit=1_000)
            p_knots = find_knots(p_adj)
            detections += 1
            if p_cycles.count:
                pwfg_cyclic += 1
            if p_knots:
                pwfg_knotted += 1
            if true_knots:
                true_deadlocked += 1
            if bool(true_knots) == bool(p_knots):
                agreements += 1
    result = sim.stats.finalize(sim)
    sweep = SweepResult(
        "TFAR1 granularity probe",
        [load],
        [result],
        capacity=sim.topology.capacity_flits_per_node_cycle,
    )
    obs = {
        "detections": float(detections),
        "pwfg_cyclic_detections": float(pwfg_cyclic),
        "pwfg_knotted_detections": float(pwfg_knotted),
        "true_deadlocked_detections": float(true_deadlocked),
        "pwfg_false_alarm_detections": float(pwfg_knotted - true_deadlocked)
        if pwfg_knotted >= true_deadlocked
        else 0.0,
        "verdict_agreement_rate": agreements / detections if detections else 1.0,
    }
    return ExperimentResult(
        experiment_id="EXT-GRAN",
        description="Exact channel-level (CWG knot) vs message-level "
        "(packet wait-for graph) deadlock verdicts per detection",
        sweeps={sweep.label: sweep},
        observations=obs,
        notes=[
            "message-level cycles routinely appear without true deadlock: "
            "forbidding them (as some avoidance schemes do) sacrifices "
            "routing freedom needlessly"
        ],
    )


def run_faults(
    scale: str = "bench",
    load: float = 0.8,
    fault_counts: Sequence[int] = (0, 2, 4, 8),
    **overrides,
) -> ExperimentResult:
    """EXT-FAULT: failed links vs deadlock susceptibility (future work §5).

    Removes progressively more physical channels from a torus (chosen by a
    fixed-seed shuffle, skipping sets that would disconnect the network)
    and reruns TFAR with one VC at fixed load.  Each removed link deletes
    routing alternatives along its rings — the Figure 2 exhausted-
    adaptivity mechanism — so blocking and deadlock susceptibility rise as
    the topology degrades.
    """
    import random as _random

    from repro.errors import TopologyError
    from repro.network.simulator import build_topology

    base = scaled_config(scale, routing="tfar", num_vcs=1, load=load, **overrides)
    healthy = build_topology(base.replace(failed_links=()))
    links = [(l.src, l.dst) for l in healthy.links]
    _random.Random(17).shuffle(links)

    sweeps = {}
    obs = {}
    for count in fault_counts:
        failed = tuple(links[:count])
        cfg = base.replace(failed_links=failed)
        label = f"faults={count}"
        try:
            sim = NetworkSimulator(cfg)
        except TopologyError:
            obs[f"f{count}_skipped_disconnected"] = 1.0
            continue
        result = sim.run()
        sweeps[label] = SweepResult(
            label,
            [load],
            [result],
            capacity=sim.topology.capacity_flits_per_node_cycle,
        )
        obs[f"f{count}_norm_deadlocks"] = result.normalized_deadlocks
        obs[f"f{count}_blocked_pct"] = 100 * result.avg_blocked_fraction
        obs[f"f{count}_latency"] = result.avg_latency
    return ExperimentResult(
        experiment_id="EXT-FAULT",
        description="Irregular topology: failed links exhaust adaptivity "
        "and raise deadlock susceptibility (TFAR, 1 VC)",
        sweeps=sweeps,
        observations=obs,
        notes=[
            "each failed link removes minimal-path alternatives: the "
            "correlated dependencies a knot needs form more easily"
        ],
    )


def run_arbitration(
    scale: str = "bench",
    load: float = 1.0,
    policies: Sequence[str] = ("random", "oldest-first", "round-robin"),
    **overrides,
) -> ExperimentResult:
    """ABL-ARB: service-order (arbitration) policy vs fairness and deadlock.

    Identical workloads served in random, age-priority, or round-robin
    order.  Arbitration shapes the starvation tail (max blocked duration)
    and, by changing which correlated wait patterns persist, can shift
    deadlock frequency at saturation.
    """
    base = scaled_config(scale, routing="dor", num_vcs=1, load=load, **overrides)
    sweeps = {}
    obs = {}
    for policy in policies:
        cfg = base.replace(arbitration=policy)
        sim = NetworkSimulator(cfg)
        result = sim.run()
        sweeps[policy] = SweepResult(
            policy,
            [load],
            [result],
            capacity=sim.topology.capacity_flits_per_node_cycle,
        )
        obs[f"{policy}_deadlocks"] = float(result.deadlocks)
        obs[f"{policy}_max_blocked"] = float(result.max_blocked_duration)
        obs[f"{policy}_max_latency"] = float(result.max_latency)
        obs[f"{policy}_throughput"] = result.normalized_throughput(
            sim.topology.capacity_flits_per_node_cycle
        )
    return ExperimentResult(
        experiment_id="ABL-ARB",
        description="Arbitration (service order): random vs oldest-first "
        "vs round-robin at saturation",
        sweeps=sweeps,
        observations=obs,
    )
