"""Figure 6 — effect of routing adaptivity (DOR vs TFAR, one VC).

Reported shape (paper, 16-ary 2-cube, bidirectional, 1 VC):

* TFAR suffers **no deadlocks below saturation**, ~1 per 100 delivered at
  saturation;
* DOR forms deadlocks earlier and, in absolute terms, up to ~6x more of
  them, yet sustains higher throughput — its deadlocks are local,
  single-cycle, quickly broken;
* TFAR's rare deadlocks are *multi-cycle* and much larger: deadlock sets
  5–7x and resource sets 7–10x DOR's, knot cycle densities 10–30x;
* TFAR also exhibits many cyclic non-deadlocks (cycles without knots),
  which DOR structurally cannot (its fan-out is 1, so every cycle it forms
  is a knot).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "FIG6"
DESCRIPTION = (
    "Normalized deadlocks/cycles and deadlock/resource set sizes vs load "
    "for DOR vs TFAR (1 VC, bidirectional torus, uniform traffic)"
)


def run(scale: str = "bench", loads: Sequence[float] | None = None, **overrides) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, num_vcs=1, **overrides)

    dor = experiment_sweep(base.replace(routing="dor"), loads, label="DOR")
    tfar = experiment_sweep(base.replace(routing="tfar"), loads, label="TFAR")

    dor_total = sum(dor.deadlock_counts)
    tfar_total = sum(tfar.deadlock_counts)

    def _ratio(a: float, b: float) -> float:
        return a / b if b else float("inf") if a else 0.0

    # Compare characteristics over the loads where both formed deadlocks.
    tfar_sets = [s for s in tfar.deadlock_set_sizes if s > 0]
    dor_sets = [s for s in dor.deadlock_set_sizes if s > 0]
    tfar_res = [s for s in tfar.resource_set_sizes if s > 0]
    dor_res = [s for s in dor.resource_set_sizes if s > 0]
    tfar_dens = [r.avg_knot_cycle_density for r in tfar.results if r.deadlocks]
    dor_dens = [r.avg_knot_cycle_density for r in dor.results if r.deadlocks]

    def _mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    obs = {
        "dor_total_deadlocks": float(dor_total),
        "tfar_total_deadlocks": float(tfar_total),
        "actual_deadlock_ratio_dor_over_tfar": _ratio(dor_total, tfar_total),
        "deadlock_set_ratio_tfar_over_dor": _ratio(_mean(tfar_sets), _mean(dor_sets)),
        "resource_set_ratio_tfar_over_dor": _ratio(_mean(tfar_res), _mean(dor_res)),
        "knot_density_ratio_tfar_over_dor": _ratio(_mean(tfar_dens), _mean(dor_dens)),
        "dor_multi_cycle_deadlocks": float(
            sum(r.multi_cycle_deadlocks for r in dor.results)
        ),
        "tfar_multi_cycle_deadlocks": float(
            sum(r.multi_cycle_deadlocks for r in tfar.results)
        ),
    }
    notes = []
    if dor_total >= tfar_total:
        notes.append("shape OK: DOR forms more actual deadlocks than TFAR")
    else:
        notes.append("shape MISMATCH: expected more actual deadlocks under DOR")
    if obs["deadlock_set_ratio_tfar_over_dor"] > 1.0:
        notes.append("shape OK: TFAR deadlock sets larger than DOR's")
    if obs["dor_multi_cycle_deadlocks"] == 0:
        notes.append("shape OK: every DOR deadlock is single-cycle (fan-out 1)")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps={"DOR": dor, "TFAR": tfar},
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
