"""Section 3.5 — effect of network node degree.

The paper compares a 16-ary 2-cube (2D, 256 nodes) against a 4-ary 4-cube
(4D, 256 nodes), both with TFAR and one VC.  Load is normalized per
topology (total link bandwidth over average internode distance), so the
comparison isolates node degree and dimensionality.

Reported shape: the 4D network forms fewer than 1% of the 2D network's
deadlocks before saturation, sustains load well beyond the 2D saturation
point, and the few deadlocks it does form are all single-cycle — the extra
physical channels cut contention while the added dimensions raise the
degree of dependency correlation a knot requires.

At bench scale the same node count is preserved: 8-ary 2-cube (64 nodes)
vs 2x2x2x... we use a 4-ary 3-cube (64 nodes) so both networks have equal
population and the dimension count is the only change.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "SEC3.5"
DESCRIPTION = (
    "Deadlock frequency vs node degree: low- vs high-dimensional tori of "
    "equal size (TFAR, 1 VC)"
)

#: (k, n) pairs per scale — equal node counts, different dimensionality.
GEOMETRIES = {
    "paper": ((16, 2), (4, 4)),
    "bench": ((8, 2), (4, 3)),
    "tiny": ((4, 2), (2, 4)),
}


def run(scale: str = "bench", loads: Sequence[float] | None = None, **overrides) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    (k_lo, n_lo), (k_hi, n_hi) = GEOMETRIES[scale]
    base = scaled_config(scale, routing="tfar", num_vcs=1, **overrides)

    low = experiment_sweep(
        base.replace(k=k_lo, n=n_lo), loads, label=f"{k_lo}-ary {n_lo}-cube"
    )
    high = experiment_sweep(
        base.replace(k=k_hi, n=n_hi), loads, label=f"{k_hi}-ary {n_hi}-cube"
    )

    low_total = sum(low.deadlock_counts)
    high_total = sum(high.deadlock_counts)
    high_multi = sum(r.multi_cycle_deadlocks for r in high.results)
    obs = {
        "low_dim_total_deadlocks": float(low_total),
        "high_dim_total_deadlocks": float(high_total),
        "high_over_low_deadlock_ratio": (
            high_total / low_total if low_total else float("nan")
        ),
        "high_dim_multi_cycle_deadlocks": float(high_multi),
    }
    notes = []
    if high_total <= low_total:
        notes.append(
            "shape OK: the higher-degree network forms no more deadlocks "
            "than the lower-degree one"
        )
    else:
        notes.append("shape MISMATCH: expected fewer deadlocks at higher degree")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps={low.label: low, high.label: high},
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
