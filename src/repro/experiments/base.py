"""Shared infrastructure for the per-figure experiment runners.

Each experiment module reproduces one figure or section of the paper's
evaluation.  Runners accept a ``scale``:

* ``"paper"`` — the paper's 16-ary 2-cube, 32-flit messages, 30k measured
  cycles.  Faithful but slow in pure Python (hours per figure).
* ``"bench"`` — 8-ary 2-cube, 16-flit messages, a few thousand measured
  cycles.  Preserves every structural property the experiments exercise;
  each figure regenerates in about a minute.  Used by the benchmark harness.
* ``"tiny"``  — 4-ary 2-cube for smoke tests.

The output of every runner is an :class:`ExperimentResult` whose
``format_table`` renders the same rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.config import SimulationConfig, bench_default, paper_default, tiny_default
from repro.errors import ConfigurationError
from repro.metrics.sweep import SweepResult, run_load_sweep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.runner import CampaignRunner

__all__ = [
    "scaled_config",
    "scaled_loads",
    "experiment_sweep",
    "set_campaign_runner",
    "campaign_runner",
    "ExperimentResult",
    "format_table",
    "set_default_obs_level",
    "default_obs_level",
]

#: observability level applied by :func:`scaled_config` when the caller does
#: not pass ``obs_level`` explicitly — how ``repro experiment --obs-level``
#: reaches every config an experiment runner builds without threading a new
#: parameter through all of them
_DEFAULT_OBS_LEVEL = 0


def set_default_obs_level(level: int) -> None:
    """Set the ``obs_level`` that :func:`scaled_config` applies by default."""
    global _DEFAULT_OBS_LEVEL
    if level not in (0, 1, 2):
        raise ConfigurationError(f"obs_level must be 0, 1 or 2, got {level}")
    _DEFAULT_OBS_LEVEL = level


def default_obs_level() -> int:
    """The ``obs_level`` currently applied by :func:`scaled_config`."""
    return _DEFAULT_OBS_LEVEL


#: active campaign runner applied by :func:`experiment_sweep` — how
#: ``repro campaign run`` / ``repro experiment --store`` make every sweep
#: of every experiment checkpointed without threading a runner through all
#: the per-figure signatures (mirrors :data:`_DEFAULT_OBS_LEVEL`)
_CAMPAIGN_RUNNER: Optional["CampaignRunner"] = None


def set_campaign_runner(runner: Optional["CampaignRunner"]) -> None:
    """Install (or clear, with ``None``) the campaign runner sweeps use.

    Anything with the runner surface works — ``run_sweep(base, loads,
    label)`` returning a :class:`~repro.campaign.runner.CampaignSweep`,
    plus ``store`` and ``registry`` attributes.  In practice that is a
    :class:`~repro.campaign.runner.CampaignRunner` (single-host, ``repro
    campaign run``) or a :class:`~repro.campaign.service.runner.
    ServiceRunner` draining points through a distributed campaign service
    (``repro campaign serve``); experiments cannot tell them apart, which
    is the point — distribution is an execution detail, not an experiment
    concern.
    """
    global _CAMPAIGN_RUNNER
    _CAMPAIGN_RUNNER = runner


def campaign_runner() -> Optional["CampaignRunner"]:
    """The campaign runner currently applied by :func:`experiment_sweep`."""
    return _CAMPAIGN_RUNNER


def experiment_sweep(
    base: SimulationConfig, loads: Sequence[float], label: str = ""
) -> SweepResult:
    """The load sweep every experiment runner goes through.

    Plain serial :func:`~repro.metrics.sweep.run_load_sweep` by default;
    when a campaign runner is installed (``repro campaign run``,
    ``repro experiment --store``, or :func:`set_campaign_runner`), the
    sweep is checkpointed, fault-tolerant and resumable instead.  Points a
    campaign could not complete are recorded on the returned sweep's
    ``failures`` (and rendered as degraded notes) rather than raised.
    """
    if _CAMPAIGN_RUNNER is None:
        return run_load_sweep(base, loads, label)
    return _CAMPAIGN_RUNNER.run_sweep(base, loads, label).sweep


def scaled_config(scale: str, **overrides) -> SimulationConfig:
    """Base configuration for the requested scale."""
    factories = {
        "paper": paper_default,
        "bench": bench_default,
        "tiny": tiny_default,
    }
    overrides.setdefault("obs_level", _DEFAULT_OBS_LEVEL)
    try:
        return factories[scale](**overrides)
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(factories)}"
        ) from None


def scaled_loads(scale: str) -> list[float]:
    """Load grid per scale: denser for the faithful paper runs."""
    if scale == "paper":
        return [round(0.1 * i, 1) for i in range(1, 13)]
    if scale == "bench":
        return [0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
    return [0.3, 0.6, 0.9, 1.2]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Plain-text table rendering used by every experiment report."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            if v == float("inf"):
                return "inf"
            return f"{v:.4f}" if abs(v) < 10 else f"{v:.1f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in str_rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Sweeps plus derived observations for one paper figure/section."""

    experiment_id: str  #: e.g. "FIG5"
    description: str
    sweeps: dict[str, SweepResult]
    #: named scalar observations used by shape assertions and reports
    observations: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def format_tables(self) -> str:
        """All series of this experiment as paper-style text tables."""
        blocks = [f"{self.experiment_id}: {self.description}", ""]
        for label, sweep in self.sweeps.items():
            rows = [
                (
                    row["load"],
                    row["throughput"],
                    row["deadlocks"],
                    row["norm_deadlocks"],
                    row["avg_deadlock_set"],
                    row["avg_resource_set"],
                    row["avg_knot_density"],
                    row["avg_cycles"],
                    row["blocked_pct"],
                )
                for row in sweep.rows()
            ]
            sat = sweep.saturation_load
            notes = [f"saturation load ~ {sat}" if sat is not None else "no saturation"]
            for failure in sweep.failures:
                notes.append(
                    f"DEGRADED: load {failure.load:g} missing — point failed "
                    f"after {failure.attempts} attempt(s) ({failure.kind}): "
                    f"{failure.error}"
                )
            blocks.append(
                format_table(
                    f"{self.experiment_id} [{label}]",
                    (
                        "load",
                        "thput",
                        "dlocks",
                        "norm_dl",
                        "dset",
                        "rset",
                        "knotcyc",
                        "cycles",
                        "blocked%",
                    ),
                    rows,
                    notes,
                )
            )
            blocks.append("")
        if self.observations:
            blocks.append("Observations:")
            for k, v in self.observations.items():
                blocks.append(f"  {k} = {v:.4g}" if isinstance(v, float) else f"  {k} = {v}")
        for n in self.notes:
            blocks.append(f"  note: {n}")
        return "\n".join(blocks)
