"""Figure 7 — effect of virtual channels (DOR/TFAR x 1..4 VCs).

Reported shape (paper, 16-ary 2-cube, bidirectional, uniform traffic):

* DOR2 forms no deadlocks *before* saturation — the second VC more than
  doubles the load at which deadlocks begin versus DOR1;
* with 3 or more VCs DOR suffers **no deadlocks at all**; TFAR needs only
  2 VCs for the same effect (adaptivity amplifies each added VC);
* extra VCs cut congestion (blocked-message percentage) dramatically and
  delay the appearance of dependency cycles to higher loads, but once
  saturation is reached the cycle count grows explosively — enormous
  cyclic non-deadlocks form even though knots never do.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "FIG7"
DESCRIPTION = (
    "Normalized deadlocks vs load and dependency cycles vs blocked "
    "messages for DOR/TFAR with 1-4 VCs"
)


def run(
    scale: str = "bench",
    loads: Sequence[float] | None = None,
    vc_counts: Sequence[int] = (1, 2, 3, 4),
    **overrides,
) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, **overrides)

    sweeps = {}
    for routing in ("dor", "tfar"):
        for vcs in vc_counts:
            label = f"{routing.upper()}{vcs}"
            cfg = base.replace(routing=routing, num_vcs=vcs)
            sweeps[label] = experiment_sweep(cfg, loads, label=label)

    obs: dict[str, float] = {}
    for label, sweep in sweeps.items():
        obs[f"{label}_total_deadlocks"] = float(sum(sweep.deadlock_counts))
        obs[f"{label}_max_cycles"] = float(
            max((r.max_cycle_count for r in sweep.results), default=0)
        )
        obs[f"{label}_min_blocked_pct"] = 100.0 * min(
            sweep.blocked_fractions, default=0.0
        )

    notes = []
    for label in (f"DOR{v}" for v in vc_counts if v >= 3):
        if label in sweeps and obs[f"{label}_total_deadlocks"] == 0:
            notes.append(f"shape OK: {label} formed no deadlocks")
    for label in (f"TFAR{v}" for v in vc_counts if v >= 2):
        if label in sweeps and obs[f"{label}_total_deadlocks"] == 0:
            notes.append(f"shape OK: {label} formed no deadlocks")
    if (
        "DOR1" in sweeps
        and "DOR2" in sweeps
        and obs["DOR2_total_deadlocks"] <= obs["DOR1_total_deadlocks"]
    ):
        notes.append("shape OK: second VC reduces DOR deadlocks")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps=sweeps,
        observations=obs,
        notes=notes,
    )


def cycles_vs_blocked(result: ExperimentResult) -> dict[str, list[tuple[float, float]]]:
    """The Figure 7b series: (percent blocked, cycle count) per sweep point."""
    out: dict[str, list[tuple[float, float]]] = {}
    for label, sweep in result.sweeps.items():
        out[label] = [
            (100.0 * r.avg_blocked_fraction, r.avg_cycle_count)
            for r in sweep.results
        ]
    return out


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
