"""Detector ablation — true knot detection vs timeout heuristics.

The paper's key methodological claim is that earlier recovery schemes
([4, 5]) only *approximate* deadlock with timeout heuristics and therefore
"provided little insight into the frequency of true deadlocks".  This
ablation quantifies exactly that: during a simulation with the true (knot)
detector, every blocked message's blocked-duration is recorded together
with whether it is genuinely in a deadlock set.  Replaying a family of
timeout thresholds over those records yields, per threshold:

* **false positives** — messages a timeout heuristic would have declared
  deadlocked (and recovered, wasting work) that were merely congested;
* **false negatives** — genuinely deadlocked messages the heuristic has
  not flagged yet;
* precision / recall of the heuristic against ground truth.

Small thresholds flag most of a saturated network; large thresholds let
real deadlocks stall the network for thousands of cycles.  There is no
good middle — which is the motivation for true detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.base import ExperimentResult, format_table, scaled_config
from repro.metrics.sweep import SweepResult
from repro.network.simulator import NetworkSimulator

__all__ = ["run", "TimeoutEvaluation", "evaluate_thresholds"]

EXPERIMENT_ID = "ABL-DET"
DESCRIPTION = (
    "True knot detection vs timeout-heuristic approximation: false "
    "positive/negative rates per threshold"
)

DEFAULT_THRESHOLDS = (50, 100, 250, 500, 1000, 2000)


@dataclass(frozen=True)
class TimeoutEvaluation:
    """Confusion-matrix summary of one timeout threshold."""

    threshold: int
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def false_positive_rate(self) -> float:
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0


def evaluate_thresholds(
    sim: NetworkSimulator, thresholds: Sequence[int]
) -> list[TimeoutEvaluation]:
    """Replay timeout heuristics over the recorded blocked durations."""
    out = []
    for t in thresholds:
        tp = fp = fn = tn = 0
        for record in sim.detector.records:
            for _mid, duration, in_deadlock in record.blocked_durations:
                flagged = duration >= t
                if flagged and in_deadlock:
                    tp += 1
                elif flagged:
                    fp += 1
                elif in_deadlock:
                    fn += 1
                else:
                    tn += 1
        out.append(TimeoutEvaluation(t, tp, fp, fn, tn))
    return out


def run(
    scale: str = "bench",
    load: float = 0.9,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    routing: str = "dor",
    **overrides,
) -> ExperimentResult:
    cfg = scaled_config(
        scale,
        routing=routing,
        num_vcs=1,
        load=load,
        record_blocked_durations=True,
        **overrides,
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()
    evals = evaluate_thresholds(sim, thresholds)

    obs: dict[str, float] = {"true_deadlocks": float(result.deadlocks)}
    for ev in evals:
        obs[f"t{ev.threshold}_precision"] = ev.precision
        obs[f"t{ev.threshold}_recall"] = ev.recall
        obs[f"t{ev.threshold}_false_positives"] = float(ev.false_positives)

    rows = [
        (
            ev.threshold,
            ev.true_positives,
            ev.false_positives,
            ev.false_negatives,
            ev.precision,
            ev.recall,
        )
        for ev in evals
    ]
    table = format_table(
        f"{EXPERIMENT_ID}: timeout heuristic vs true (knot) detection @load={load}",
        ("threshold", "TP", "FP", "FN", "precision", "recall"),
        rows,
    )
    sweep = SweepResult(
        label=f"{routing.upper()} true-detection run",
        loads=[load],
        results=[result],
        capacity=sim.topology.capacity_flits_per_node_cycle,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps={sweep.label: sweep},
        observations=obs,
        notes=[table],
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
