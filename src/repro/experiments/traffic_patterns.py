"""Section 3.6 — effect of non-uniform traffic on deadlocks.

The paper reports that bit-reversal, matrix-transpose, perfect-shuffle and
hot-spot traffic give deadlock frequencies and characteristics similar to
uniform traffic (mostly within 10%), with one structural exception:
single-cycle deadlocks under DOR require a *circular overlap* of messages
within a row or column ring, and some permutations make that overlap
impossible, suppressing DOR deadlocks entirely.

The runner measures both routing subjects under every pattern at a fixed
set of loads and reports normalized deadlock frequency plus the deadlock
characteristics, so the "similar to uniform" claim and the DOR exception
can both be checked.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "SEC3.6"
DESCRIPTION = (
    "Deadlock frequency and characteristics under non-uniform traffic "
    "patterns, relative to uniform"
)

PATTERNS = ("uniform", "bit-reversal", "transpose", "perfect-shuffle", "hot-spot")


def run(
    scale: str = "bench",
    loads: Sequence[float] | None = None,
    routing: str = "dor",
    patterns: Sequence[str] = PATTERNS,
    **overrides,
) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, routing=routing, num_vcs=1, **overrides)

    sweeps = {}
    for pattern in patterns:
        cfg = base.replace(traffic=pattern)
        sweeps[pattern] = experiment_sweep(cfg, loads, label=pattern)

    uniform_total = sum(sweeps["uniform"].deadlock_counts) if "uniform" in sweeps else 0
    obs: dict[str, float] = {"uniform_total_deadlocks": float(uniform_total)}
    for pattern in patterns:
        if pattern == "uniform":
            continue
        total = sum(sweeps[pattern].deadlock_counts)
        obs[f"{pattern}_total_deadlocks"] = float(total)
        obs[f"{pattern}_vs_uniform_ratio"] = (
            total / uniform_total if uniform_total else float("nan")
        )
    notes = [
        "permutations that preclude circular overlap suppress DOR "
        "single-cycle deadlocks (the paper's noted exception)"
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps=sweeps,
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
