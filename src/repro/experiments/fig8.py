"""Figure 8 — effect of buffer depth (wormhole through virtual cut-through).

The paper sweeps edge-buffer depths of 2, 4, 6, 8, 16 and 32 flits with
TFAR and one VC; a depth equal to the 32-flit message length is virtual
cut-through switching, intermediate depths are buffered wormhole.

Reported shape:

* depths 2/4/6 saturate at a similar load; depth 8 about 5% higher; depths
  16 and 32 saturate ~75% higher — deeper buffers compact messages onto
  fewer channels, cutting resource contention below saturation;
* past saturation all wormhole variants deadlock heavily, with the
  cut-through network (buffer >= message) forming the fewest deadlocks;
* normalized per message *in the network* (Figure 8b), the shallow-buffer
  networks are clearly worst: each message simultaneously holds more
  channels, so the correlated dependencies deadlock needs come cheap.

At other scales the depths are chosen as the same fractions of the
message length the paper used (6.25%..100%).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run", "buffer_depths_for"]

EXPERIMENT_ID = "FIG8"
DESCRIPTION = (
    "Normalized deadlocks vs load and vs network population for buffer "
    "depths from deep wormhole to virtual cut-through (TFAR, 1 VC)"
)

#: The paper's depths as fractions of the 32-flit message length.
PAPER_FRACTIONS = (2 / 32, 4 / 32, 6 / 32, 8 / 32, 16 / 32, 32 / 32)


def buffer_depths_for(message_length: int) -> list[int]:
    """Buffer depths covering the paper's wormhole-to-VCT span."""
    depths = sorted({max(1, round(f * message_length)) for f in PAPER_FRACTIONS})
    return depths


def run(
    scale: str = "bench",
    loads: Sequence[float] | None = None,
    depths: Sequence[int] | None = None,
    **overrides,
) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, routing="tfar", num_vcs=1, **overrides)
    if depths is None:
        depths = buffer_depths_for(base.message_length)

    sweeps = {}
    for depth in depths:
        label = f"buffer={depth}"
        sweeps[label] = experiment_sweep(
            base.replace(buffer_depth=depth), loads, label=label
        )

    obs: dict[str, float] = {}
    for depth in depths:
        sweep = sweeps[f"buffer={depth}"]
        sat = sweep.saturation_load
        obs[f"buf{depth}_saturation_load"] = sat if sat is not None else float("nan")
        obs[f"buf{depth}_total_deadlocks"] = float(sum(sweep.deadlock_counts))
        pops = [r.avg_messages_in_network for r in sweep.results]
        dls = [float(r.deadlocks) for r in sweep.results]
        obs[f"buf{depth}_deadlocks_per_msg_in_net"] = (
            sum(dls) / sum(pops) if sum(pops) else 0.0
        )

    vct = max(depths)
    shallow = min(depths)
    notes = []
    if (
        obs[f"buf{vct}_deadlocks_per_msg_in_net"]
        <= obs[f"buf{shallow}_deadlocks_per_msg_in_net"]
    ):
        notes.append(
            "shape OK: per message in the network, cut-through deadlocks "
            "least and the shallowest wormhole buffers most"
        )
    sat_s = obs[f"buf{shallow}_saturation_load"]
    sat_v = obs[f"buf{vct}_saturation_load"]
    if sat_v != sat_v or (sat_s == sat_s and sat_v >= sat_s):
        notes.append("shape OK: deeper buffers saturate at equal or higher load")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps=sweeps,
        observations=obs,
        notes=notes,
    )


def deadlocks_vs_population(
    result: ExperimentResult,
) -> dict[str, list[tuple[float, float]]]:
    """The Figure 8b series: (messages in network, normalized deadlocks)."""
    out: dict[str, list[tuple[float, float]]] = {}
    for label, sweep in result.sweeps.items():
        out[label] = [
            (r.avg_messages_in_network, r.normalized_deadlocks)
            for r in sweep.results
        ]
    return out


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
