"""Recovery vs avoidance comparison (the question the paper motivates).

Section 1 of the paper frames its whole study around one engineering
decision: *when should routing be recovery-based instead of
avoidance-based?*  Its conclusion — "recovery-based routing is viable since
the unrestricted use of only a few virtual channels is sufficient to make
deadlock highly improbable" — implies unrestricted routing plus recovery
should match or beat restricted avoidance routing on the same resources.

This experiment runs, on identical hardware budgets (same topology, VCs,
buffers) and identical workloads:

* **unrestricted TFAR + Disha-style recovery** (the recovery camp),
* **dateline DOR** (avoidance via VC ordering),
* **Duato-protocol adaptive routing** (avoidance via escape channels),

and reports throughput, latency and deadlock counts per load.  The
avoidance algorithms must report zero deadlocks (they are provably
deadlock-free — this doubles as a detector validation); the interesting
output is the throughput/latency cost of their routing restrictions versus
the deadlock-handling cost of recovery.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "TAB-AVOID"
DESCRIPTION = (
    "Recovery-based (unrestricted TFAR + Disha) vs avoidance-based "
    "(dateline DOR, Duato) routing on an equal resource budget"
)


def run(
    scale: str = "bench",
    loads: Sequence[float] | None = None,
    num_vcs: int = 3,
    **overrides,
) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, num_vcs=num_vcs, **overrides)

    recovery = experiment_sweep(
        base.replace(routing="tfar", recovery="disha"),
        loads,
        label=f"TFAR{num_vcs}+recovery",
    )
    dateline = experiment_sweep(
        base.replace(routing="dor-dateline"),
        loads,
        label=f"dateline-DOR{num_vcs}",
    )
    duato = experiment_sweep(
        base.replace(routing="duato"), loads, label=f"Duato{num_vcs}"
    )

    def peak(sweep):
        return max(sweep.throughputs, default=0.0)

    obs = {
        "recovery_peak_throughput": peak(recovery),
        "dateline_peak_throughput": peak(dateline),
        "duato_peak_throughput": peak(duato),
        "recovery_total_deadlocks": float(sum(recovery.deadlock_counts)),
        "dateline_total_deadlocks": float(sum(dateline.deadlock_counts)),
        "duato_total_deadlocks": float(sum(duato.deadlock_counts)),
    }
    notes = []
    if obs["dateline_total_deadlocks"] == 0 and obs["duato_total_deadlocks"] == 0:
        notes.append("detector validation OK: avoidance baselines knot-free")
    if obs["recovery_peak_throughput"] >= obs["dateline_peak_throughput"]:
        notes.append(
            "shape OK: unrestricted routing + recovery sustains at least "
            "dateline-DOR throughput (the paper's viability conclusion)"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps={
            recovery.label: recovery,
            dateline.label: dateline,
            duato.label: duato,
        },
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
