"""Experiment runners, one per figure/table of the paper's evaluation.

===========  ==========================================================
id           experiment
===========  ==========================================================
FIG5         uni- vs bidirectional torus (DOR, 1 VC)
FIG6         DOR vs TFAR adaptivity (1 VC)
FIG7         virtual channels sweep (DOR/TFAR x 1..4 VCs)
FIG8         buffer depth sweep (wormhole ... virtual cut-through)
SEC3.5       node degree (2-D vs higher-dimensional equal-size tori)
SEC3.6       non-uniform traffic patterns
TAB-AVOID    recovery vs avoidance on an equal resource budget
ABL-DET      true knot detection vs timeout heuristics (offline replay)
ABL-REC      recovery teardown: instant vs flit-by-flit
ABL-SEL      channel-selection policy ablation
ABL-INT      detection-interval ablation
ABL-TIMEOUT  end-to-end timeout-heuristic recovery vs truth
EXT-LEN      message-length sensitivity (future-work extension)
EXT-GRAN     channel- vs message-granularity verdicts (PWFG)
EXT-FAULT    failed links / irregular topology (future-work extension)
TOPO-CMP     deadlock character across topology classes (torus3d,
             dragonfly, full mesh); alias ``topology-comparison``
===========  ==========================================================

Each runner is ``run(scale=..., ...) -> ExperimentResult`` and is also
reachable as ``python -m repro experiment <id>``.
"""

from repro.experiments import (
    ablations,
    avoidance_vs_recovery,
    detector_ablation,
    fig5,
    fig6,
    fig7,
    fig8,
    node_degree,
    topology_comparison,
    traffic_patterns,
)
from repro.experiments.base import ExperimentResult, format_table, scaled_config

ALL_EXPERIMENTS = {
    "FIG5": fig5.run,
    "FIG6": fig6.run,
    "FIG7": fig7.run,
    "FIG8": fig8.run,
    "SEC3.5": node_degree.run,
    "SEC3.6": traffic_patterns.run,
    "TAB-AVOID": avoidance_vs_recovery.run,
    "ABL-DET": detector_ablation.run,
    "ABL-REC": ablations.run_teardown,
    "ABL-SEL": ablations.run_selection,
    "ABL-INT": ablations.run_detection_interval,
    "ABL-TIMEOUT": ablations.run_timeout_mode,
    "EXT-LEN": ablations.run_message_length,
    "EXT-GRAN": ablations.run_granularity,
    "EXT-FAULT": ablations.run_faults,
    "ABL-ARB": ablations.run_arbitration,
    "TOPO-CMP": topology_comparison.run,
}

#: human-friendly spellings accepted by the CLI (resolved before lookup,
#: never iterated by ``experiment all`` — no double runs)
EXPERIMENT_ALIASES = {
    "topology-comparison": "TOPO-CMP",
}

__all__ = [
    "ablations",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "node_degree",
    "topology_comparison",
    "traffic_patterns",
    "avoidance_vs_recovery",
    "detector_ablation",
    "ExperimentResult",
    "format_table",
    "scaled_config",
    "ALL_EXPERIMENTS",
    "EXPERIMENT_ALIASES",
]
