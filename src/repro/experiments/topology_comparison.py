"""TOPO-CMP — deadlock character across topology classes.

The paper characterizes deadlocks on k-ary n-cubes only.  This study asks
how far that characterization transfers: the same knot detector and the
same load sweep are run over the topology zoo — a 3D torus (with and
without a slow "TSV" dimension), a dragonfly, and a full mesh — at a
matched node count, each under its natural *deadlock-capable* routing
function:

* ``torus3d`` / dimension-order routing — the paper's regime lifted to
  three dimensions; wraparound rings supply the cyclic dependencies.
* ``torus3d-tsv`` — identical geometry with a latency-4 third dimension
  (through-silicon-via model): same dependency structure, less bandwidth
  where cycles close.
* ``dragonfly`` / minimal routing — cycles thread local→global→local
  channels across groups rather than rings.
* ``fullmesh`` / 2-hop misrouting — direct routing is provably
  deadlock-free, so the prone variant misroutes through one random
  intermediate (a Valiant degenerate); cycles need three worms parked
  at intermediates, which is reachable but rare.

Load is normalized per topology (aggregate link bandwidth over average
internode distance, the same normalization the paper and SEC3.5 use), so
each class is stressed relative to its own capacity; the absolute
capacities are reported as observations.  Expected shape: the torus
forms deadlocks readily, the TSV variant no more than the uniform one at
equal normalized load, the dragonfly forms them through its global
links, and the full mesh forms none (or almost none) — wealth of paths,
poverty of cycles.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.experiments.base import (
    ExperimentResult,
    experiment_sweep,
    scaled_config,
    scaled_loads,
)
from repro.network.simulator import build_topology

__all__ = ["run", "series_specs"]

EXPERIMENT_ID = "TOPO-CMP"
DESCRIPTION = (
    "Deadlock formation across topology classes: 3D torus (uniform & TSV), "
    "dragonfly, full mesh at matched node count (1 VC, deadlock-capable "
    "routing per class)"
)

#: per-scale geometry: (torus3d dims, dragonfly (a, p, h), mesh nodes).
#: Node counts are matched exactly at bench scale (36 nodes everywhere).
#: At tiny/paper scale the dragonfly's canonical a*(a*h+1) router count
#: forces an approximate match (12 vs 16, 264 vs 256); the torus keeps a
#: radix-4 ring at every scale because bidirectional DOR on radix <= 3
#: rings takes at most one hop per dimension and is therefore
#: structurally deadlock-free — no ring would ever close a knot.
GEOMETRIES = {
    "paper": ((8, 8, 4), (8, 4, 4), 256),
    "bench": ((4, 3, 3), (4, 2, 2), 36),
    "tiny": ((4, 2, 2), (3, 1, 1), 16),
}

#: latency of the slow ("TSV") dimension in the torus3d-tsv series.
TSV_LATENCY = 4


def series_specs(scale: str) -> list[tuple[str, dict]]:
    """(label, config-override) pairs for every series of this study."""
    try:
        torus_dims, (a, p, h), mesh_nodes = GEOMETRIES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(GEOMETRIES)}"
        ) from None
    return [
        (
            "torus3d/dor",
            dict(topology="torus3d", dims=torus_dims, routing="dor"),
        ),
        (
            "torus3d-tsv/dor",
            dict(
                topology="torus3d",
                dims=torus_dims,
                link_latencies=(1, 1, TSV_LATENCY),
                routing="dor",
            ),
        ),
        (
            "dragonfly/df-min",
            dict(topology="dragonfly", dims=(a, p, h), routing="df-min"),
        ),
        (
            "fullmesh/fm-2hop",
            dict(topology="fullmesh", dims=(mesh_nodes,), routing="fm-2hop"),
        ),
    ]


def run(
    scale: str = "bench",
    loads: Sequence[float] | None = None,
    **overrides,
) -> ExperimentResult:
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, num_vcs=1, **overrides)

    sweeps = {}
    capacities = {}
    for label, spec in series_specs(scale):
        config = base.replace(**spec)
        sweeps[label] = experiment_sweep(config, loads, label=label)
        capacities[label] = build_topology(config).capacity_flits_per_node_cycle

    def total(label: str) -> int:
        return sum(sweeps[label].deadlock_counts)

    def mean_or_zero(values: list[float]) -> float:
        finite = [v for v in values if v > 0]
        return sum(finite) / len(finite) if finite else 0.0

    obs = {}
    for label, sweep in sweeps.items():
        key = label.split("/", 1)[0].replace("-", "_")
        obs[f"{key}_total_deadlocks"] = float(total(label))
        obs[f"{key}_mean_knot_size"] = mean_or_zero(sweep.deadlock_set_sizes)
        obs[f"{key}_mean_cycle_density"] = mean_or_zero(
            [r.avg_knot_cycle_density for r in sweep.results]
        )
        obs[f"{key}_capacity_flits"] = capacities[label]

    notes = [
        "load is normalized per topology (same grid, each class relative "
        "to its own capacity); see capacity observations for absolute rates"
    ]
    torus_total = total("torus3d/dor")
    mesh_total = total("fullmesh/fm-2hop")
    if torus_total > 0 and mesh_total <= torus_total:
        notes.append(
            "shape OK: torus forms deadlocks; full mesh forms no more than "
            "the torus (direct paths starve the knot of cycles)"
        )
    elif torus_total == 0:
        notes.append(
            "shape MISMATCH: expected the torus to form deadlocks at these "
            "loads"
        )
    else:
        notes.append(
            "shape MISMATCH: full mesh out-deadlocked the torus"
        )
    if total("torus3d-tsv/dor") > 0:
        notes.append(
            "TSV torus deadlocks too: per-dimension latency changes "
            "bandwidth, not the dependency structure knots need"
        )
    if total("dragonfly/df-min") > 0:
        notes.append(
            "dragonfly deadlocks under minimal routing: knots close "
            "through local->global->local chains, not rings"
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps=sweeps,
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
