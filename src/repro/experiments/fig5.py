"""Figure 5 — effect of physical links (uni- vs bidirectional torus).

The paper compares a uni- and a bidirectional torus, both running
dimension-order routing with one virtual channel, under uniform traffic.

Reported shape (paper, 16-ary 2-cube):

* the unidirectional torus suffers *more* normalized deadlocks at every
  load (≈7 vs ≈1 per 100 messages delivered below saturation; 60% vs 11%
  deep into saturation), despite carrying less traffic, because every
  message in a uni ring shares the same 50%-utilized links and the
  correlated dependencies deadlock needs form easily;
* deadlock sets stay small (a bi-torus cycle needs at least 3 messages, a
  uni-torus cycle only 2 in principle — the paper observes up to ~4 and ~3
  below saturation, converging to about 6 deep in saturation);
* all deadlocks are single-cycle.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.base import ExperimentResult, experiment_sweep, scaled_config, scaled_loads

__all__ = ["run"]

EXPERIMENT_ID = "FIG5"
DESCRIPTION = (
    "Normalized deadlocks and deadlock-set size vs load for uni- vs "
    "bidirectional tori (DOR, 1 VC, uniform traffic)"
)


def run(scale: str = "bench", loads: Sequence[float] | None = None, **overrides) -> ExperimentResult:
    """Reproduce both panels of Figure 5."""
    loads = list(loads) if loads is not None else scaled_loads(scale)
    base = scaled_config(scale, routing="dor", num_vcs=1, **overrides)

    bi = experiment_sweep(base.replace(bidirectional=True), loads, label="bi-directional")
    uni = experiment_sweep(base.replace(bidirectional=False), loads, label="uni-directional")

    # Headline comparisons at the highest common load (deep saturation).
    last = -1
    obs = {
        "uni_norm_deadlocks_deep": uni.normalized_deadlocks[last],
        "bi_norm_deadlocks_deep": bi.normalized_deadlocks[last],
        "uni_total_deadlocks": float(sum(uni.deadlock_counts)),
        "bi_total_deadlocks": float(sum(bi.deadlock_counts)),
        "uni_avg_deadlock_set_deep": uni.deadlock_set_sizes[last],
        "bi_avg_deadlock_set_deep": bi.deadlock_set_sizes[last],
    }
    notes = []
    if obs["uni_norm_deadlocks_deep"] > obs["bi_norm_deadlocks_deep"]:
        notes.append(
            "shape OK: uni-torus suffers more normalized deadlocks than bi-torus"
        )
    else:
        notes.append("shape MISMATCH: expected uni > bi normalized deadlocks")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        description=DESCRIPTION,
        sweeps={"bi-directional": bi, "uni-directional": uni},
        observations=obs,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().format_tables())
