"""Report rendering: CSV export and ASCII charts for experiment results.

The paper presents its results as x/y figures (load on the x axis).  With
no plotting dependency available, this module renders the same series as
ASCII scatter charts and exports machine-readable CSV so the figures can
be re-plotted elsewhere.
"""

from __future__ import annotations

import csv
import io
import math
import time
from typing import Mapping, Sequence

from repro.experiments.base import ExperimentResult

__all__ = [
    "sweep_csv",
    "experiment_csv",
    "ascii_chart",
    "render_figure",
    "render_topology_comparison",
    "format_obs_snapshot",
    "render_obs_rollup",
    "render_campaign_status",
]


def sweep_csv(result: ExperimentResult) -> str:
    """All sweep rows of an experiment as CSV (one row per series x load)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "experiment",
            "series",
            "load",
            "throughput",
            "delivered",
            "deadlocks",
            "norm_deadlocks",
            "avg_deadlock_set",
            "avg_resource_set",
            "avg_knot_density",
            "avg_cycles",
            "blocked_pct",
            "in_network",
            "latency",
        ]
    )
    for label, sweep in result.sweeps.items():
        for row in sweep.rows():
            writer.writerow(
                [
                    result.experiment_id,
                    label,
                    row["load"],
                    f"{row['throughput']:.6f}",
                    row["delivered"],
                    row["deadlocks"],
                    f"{row['norm_deadlocks']:.6f}",
                    f"{row['avg_deadlock_set']:.3f}",
                    f"{row['avg_resource_set']:.3f}",
                    f"{row['avg_knot_density']:.3f}",
                    f"{row['avg_cycles']:.3f}",
                    f"{row['blocked_pct']:.3f}",
                    f"{row['in_network']:.3f}",
                    f"{row['latency']:.3f}",
                ]
            )
    return buf.getvalue()


def experiment_csv(results: Sequence[ExperimentResult]) -> str:
    """Concatenated CSV for several experiments (shared header)."""
    parts = [sweep_csv(r) for r in results]
    header, *_ = parts[0].splitlines()
    body = []
    for part in parts:
        body.extend(part.splitlines()[1:])
    return "\n".join([header, *body]) + "\n"


_MARKS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render named (x, y) point series as an ASCII scatter chart."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"

    def ty(y: float) -> float:
        return math.log10(y + 1e-12) if log_y else y

    xs = [p[0] for p in points]
    ys = [ty(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (label, pts) in zip(_MARKS, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((ty(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    lines.append(f"{y_hi_label:>{margin}} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * margin + " |" + "".join(row))
    lines.append(f"{y_lo_label:>{margin}} +" + "".join(grid[-1]))
    lines.append(
        " " * margin
        + "  "
        + f"{x_lo:<.3g}".ljust(width - 8)
        + f"{x_hi:>.3g}"
    )
    lines.append(" " * margin + f"  [{x_label}]" + ("  (log y)" if log_y else ""))
    legend = "   ".join(
        f"{mark}={label}" for mark, label in zip(_MARKS, series.keys())
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def format_obs_snapshot(snapshot: Mapping, title: str = "observability") -> str:
    """One observability snapshot (or merged rollup) as a text report.

    ``snapshot`` is the mapping produced by
    :meth:`repro.obs.observer.Observer.snapshot` or by
    :func:`repro.obs.registry.merge_snapshots` over several of them:
    phase wall-clock times (summed CPU seconds when merged across pool
    workers), counters, gauges, and histogram summaries.
    """
    lines = [title, "-" * len(title)]
    phases = snapshot.get("phases") or {}
    if phases:
        # top-level engine phases (no "/" beyond the leading component
        # grouping) carry the whole-step time; sub-phases nest inside them
        total = sum(
            rec["total_s"]
            for name, rec in phases.items()
            if name.startswith("engine/")
        )
        lines.append(f"  {'phase':<22} {'total ms':>10} {'calls':>9} "
                     f"{'us/call':>9} {'share':>6}")
        for name in sorted(phases, key=lambda n: -phases[n]["total_s"]):
            rec = phases[name]
            per = 1e6 * rec["total_s"] / rec["calls"] if rec["calls"] else 0.0
            share = 100 * rec["total_s"] / total if total else 0.0
            lines.append(
                f"  {name:<22} {1e3 * rec['total_s']:>10.2f} "
                f"{rec['calls']:>9} {per:>9.1f} {share:>5.1f}%"
            )
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<30} {counters[name]}")
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("  gauges (max across points):")
        for name in sorted(gauges):
            lines.append(f"    {name:<30} {gauges[name]:g}")
    for name in sorted(snapshot.get("histograms") or {}):
        h = snapshot["histograms"][name]
        mean = h["total"] / h["count"] if h["count"] else 0.0
        lines.append(
            f"  histogram {name}: n={h['count']} mean={mean:.2f}"
        )
    trace = snapshot.get("trace")
    if trace:
        lines.append(
            f"  trace: {trace.get('events', 0)} events recorded, "
            f"{trace.get('dropped', 0)} dropped"
        )
    return "\n".join(lines)


def render_obs_rollup(result: ExperimentResult) -> str:
    """Observability rollups of an experiment, one block per series.

    Renders the merged (whole-sweep) snapshot each
    :class:`~repro.metrics.sweep.SweepResult` carries in ``.obs``; series
    that ran with ``obs_level=0`` are skipped.  Returns ``""`` when no
    series collected observability data.
    """
    blocks = []
    for label, sweep in result.sweeps.items():
        if sweep.obs is None:
            continue
        blocks.append(
            format_obs_snapshot(
                sweep.obs["sweep"],
                title=f"{result.experiment_id} [{label}] observability rollup "
                f"({len(sweep.obs['points'])} points merged)",
            )
        )
    return "\n\n".join(blocks)


def render_campaign_status(store) -> str:
    """Human-readable state of a campaign result store.

    ``store`` is a :class:`repro.campaign.store.ResultStore`.  Renders the
    manifest (done / failed points, attempt counts, retry/timeout/resume
    counters) without running anything — the report side of resumability:
    what is durable, what degraded, what a re-invocation would still run.
    """
    manifest = store.load_manifest()
    points = manifest.get("points", {})
    done = {d: p for d, p in points.items() if p.get("status") == "done"}
    failed = {d: p for d, p in points.items() if p.get("status") == "failed"}
    lines = [
        f"campaign store: {store.root}",
        f"  schema version: {manifest.get('schema_version')}",
        f"  points: {len(done)} done, {len(failed)} failed (degraded)",
    ]
    started = manifest.get("started_at")
    updated = manifest.get("updated_at")
    if started is not None and updated is not None:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(updated))
        lines.append(
            f"  elapsed: {max(0.0, updated - started):.1f}s wall-clock "
            f"(last manifest write {stamp})"
        )
    counters = manifest.get("counters", {})
    retried = sum(
        p.get("attempts", 1) - 1
        for p in points.values()
        if p.get("attempts", 1) > 1
    )
    lines.append(
        f"  retries: {counters.get('retries', retried)} attempt(s) re-run "
        f"({counters.get('timeouts', 0)} timeout(s), "
        f"{retried} surviving in per-point attempt counts)"
    )
    if counters:
        lines.append(
            "  counters: "
            + ", ".join(f"{k}={counters[k]}" for k in sorted(counters))
        )
    for digest, point in sorted(done.items(), key=lambda kv: kv[1].get("load", 0)):
        attempts = point.get("attempts")
        suffix = f" (attempts={attempts})" if attempts and attempts > 1 else ""
        lines.append(f"  done    {digest[:12]}  {point.get('label')}{suffix}")
    for digest, point in sorted(failed.items(), key=lambda kv: kv[1].get("load", 0)):
        lines.append(
            f"  FAILED  {digest[:12]}  {point.get('label')}  "
            f"[{point.get('kind', 'error')} after {point.get('attempts', '?')} "
            f"attempt(s)] {point.get('error', '')}"
        )
    if not points:
        lines.append("  (empty — no points recorded yet)")
    return "\n".join(lines)


def render_topology_comparison(result: ExperimentResult) -> str:
    """The TOPO-CMP summary table: one row per topology class.

    Condenses each series' sweep into the quantities the study compares —
    absolute capacity, total deadlocks over the sweep, the peak
    per-1k-cycle formation rate, and the mean knot size / cycle density
    over the loads that actually deadlocked.  The per-load detail stays
    in the standard sweep tables; this is the figure-style rollup.
    """
    from repro.experiments.base import format_table

    rows = []
    for label, sweep in result.sweeps.items():
        key = label.split("/", 1)[0].replace("-", "_")
        deadlocked = [r for r in sweep.results if r.deadlocks]
        rows.append(
            (
                label,
                result.observations.get(f"{key}_capacity_flits", float("nan")),
                sum(sweep.deadlock_counts),
                max((r.normalized_deadlocks for r in sweep.results), default=0.0),
                result.observations.get(f"{key}_mean_knot_size", 0.0),
                result.observations.get(f"{key}_mean_cycle_density", 0.0),
                len(deadlocked),
            )
        )
    return format_table(
        f"{result.experiment_id}: topology-class comparison",
        (
            "topology/routing",
            "capacity",
            "dlocks",
            "peak/1kcyc",
            "knot_size",
            "cyc_dens",
            "loads_dl",
        ),
        rows,
        notes=(
            "capacity in flits/node/cycle; knot size & cycle density "
            "averaged over deadlocked loads only",
        ),
    )


def render_figure(
    result: ExperimentResult,
    metric: str = "norm_deadlocks",
    *,
    log_y: bool = False,
) -> str:
    """One paper-style figure: ``metric`` vs load for every series.

    ``metric`` is any key of :meth:`SweepResult.rows` rows, e.g.
    ``norm_deadlocks``, ``avg_cycles``, ``blocked_pct``, ``throughput``.
    """
    series = {}
    for label, sweep in result.sweeps.items():
        series[label] = [(row["load"], row[metric]) for row in sweep.rows()]
    return ascii_chart(
        series,
        title=f"{result.experiment_id}: {metric} vs normalized load",
        x_label="normalized load",
        y_label=metric,
        log_y=log_y,
    )
