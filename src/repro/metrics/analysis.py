"""Post-hoc analysis of detection records.

The paper's argument rests on relationships the raw counters only hint at:
how blocked messages and routing fan-out govern cycle formation, how
cycles relate to knots, how long deadlocks persist, and how often the
same messages are re-victimized.  This module computes those secondary
statistics from a completed simulation's
:class:`~repro.core.detector.DetectionRecord` stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.detector import DetectionRecord

__all__ = [
    "DeadlockAnalysis",
    "analyze_records",
    "interarrival_times",
    "deadlock_probability_given_cycles",
    "blocked_vs_cycles_series",
]


@dataclass(frozen=True)
class DeadlockAnalysis:
    """Aggregate secondary statistics over a run's detection records."""

    detections: int
    detections_with_deadlock: int
    total_deadlocks: int
    mean_interarrival: float  #: cycles between consecutive deadlock events
    median_interarrival: float
    mean_deadlock_set: float
    mean_resource_set: float
    mean_knot_density: float
    max_knot_density: int
    single_cycle_fraction: float
    mean_dependents_per_deadlock: float
    #: Pearson correlation between blocked-message count and cycle count
    blocked_cycle_correlation: float

    def summary(self) -> str:
        return (
            f"{self.total_deadlocks} deadlocks over {self.detections} "
            f"detections ({self.detections_with_deadlock} positive); "
            f"interarrival mean={self.mean_interarrival:.0f} cycles; "
            f"sets {self.mean_deadlock_set:.1f} msgs / "
            f"{self.mean_resource_set:.1f} VCs; "
            f"density mean={self.mean_knot_density:.1f} "
            f"max={self.max_knot_density}; "
            f"{100 * self.single_cycle_fraction:.0f}% single-cycle; "
            f"blocked~cycles r={self.blocked_cycle_correlation:.2f}"
        )


def interarrival_times(records: Sequence["DetectionRecord"]) -> list[int]:
    """Cycles between consecutive detections that found a deadlock."""
    hits = [r.cycle for r in records if r.events]
    return [b - a for a, b in zip(hits, hits[1:])]


def _mean(xs) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def _median(xs) -> float:
    xs = sorted(xs)
    if not xs:
        return 0.0
    mid = len(xs) // 2
    if len(xs) % 2:
        return float(xs[mid])
    return (xs[mid - 1] + xs[mid]) / 2


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mx, my = _mean(xs), _mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def analyze_records(records: Sequence["DetectionRecord"]) -> DeadlockAnalysis:
    """Compute the full secondary-statistics bundle."""
    events = [e for r in records for e in r.events]
    inter = interarrival_times(records)
    blocked = [float(r.blocked_messages) for r in records]
    cycles = [
        float(r.cycle_count.count) for r in records if r.cycle_count is not None
    ]
    # correlation only over records that have both measurements
    paired = [
        (float(r.blocked_messages), float(r.cycle_count.count))
        for r in records
        if r.cycle_count is not None
    ]
    corr = _pearson([p[0] for p in paired], [p[1] for p in paired])

    singles = sum(1 for e in events if e.knot_cycle_density <= 1)
    return DeadlockAnalysis(
        detections=len(records),
        detections_with_deadlock=sum(1 for r in records if r.events),
        total_deadlocks=len(events),
        mean_interarrival=_mean(inter),
        median_interarrival=_median(inter),
        mean_deadlock_set=_mean(e.deadlock_set_size for e in events),
        mean_resource_set=_mean(e.resource_set_size for e in events),
        mean_knot_density=_mean(e.knot_cycle_density for e in events),
        max_knot_density=max((e.knot_cycle_density for e in events), default=0),
        single_cycle_fraction=singles / len(events) if events else 0.0,
        mean_dependents_per_deadlock=_mean(len(e.dependent) for e in events),
        blocked_cycle_correlation=corr,
    )


def deadlock_probability_given_cycles(
    records: Sequence["DetectionRecord"], thresholds: Sequence[int] = (1, 5, 20, 100)
) -> dict[int, float]:
    """P(deadlock at a detection | cycle count >= threshold).

    Quantifies the paper's point that cycles are necessary but far from
    sufficient: even with many cycles present, knots may be rare.
    """
    out = {}
    for t in thresholds:
        eligible = [
            r for r in records
            if r.cycle_count is not None and r.cycle_count.count >= t
        ]
        if eligible:
            out[t] = sum(1 for r in eligible if r.events) / len(eligible)
        else:
            out[t] = float("nan")
    return out


def blocked_vs_cycles_series(
    records: Sequence["DetectionRecord"],
) -> list[tuple[int, int]]:
    """(blocked messages, cycle count) per detection — the Figure 7b axes."""
    return [
        (r.blocked_messages, r.cycle_count.count)
        for r in records
        if r.cycle_count is not None
    ]
