"""Multi-seed replication with confidence intervals.

Deadlock formation is a rare-event process: a single 8,000-cycle run of a
sub-saturation network may see zero or five deadlocks by chance.  The
paper reports single runs; this module adds the statistical hygiene a
modern reproduction needs — N independent seeds per configuration, sample
mean, standard deviation and a t-distribution confidence interval for
every headline metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import SimulationConfig
from repro.metrics.stats import RunResult

__all__ = ["MetricEstimate", "ReplicatedResult", "replicate"]

# Two-sided 95% Student-t critical values by degrees of freedom (1..30).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def _t95(df: int) -> float:
    if df <= 0:
        return float("inf")
    return _T95.get(df, 1.96)  # normal approximation past 30 dof


@dataclass(frozen=True)
class MetricEstimate:
    """Sample statistics for one metric over replicated runs."""

    name: str
    samples: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((x - m) ** 2 for x in self.samples) / (self.n - 1))

    @property
    def stderr(self) -> float:
        return self.std / math.sqrt(self.n) if self.n else 0.0

    @property
    def ci95(self) -> tuple[float, float]:
        """Two-sided 95% confidence interval for the mean."""
        if self.n < 2:
            return (float("-inf"), float("inf"))
        half = _t95(self.n - 1) * self.stderr
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        lo, hi = self.ci95
        return f"{self.name}={self.mean:.4g} [{lo:.4g}, {hi:.4g}] (n={self.n})"


#: metric extractors applied to every replicated RunResult
DEFAULT_METRICS: dict[str, Callable[[RunResult], float]] = {
    "normalized_deadlocks": lambda r: r.normalized_deadlocks,
    "deadlocks": lambda r: float(r.deadlocks),
    "delivered": lambda r: float(r.delivered_total),
    "avg_latency": lambda r: r.avg_latency,
    "avg_blocked_fraction": lambda r: r.avg_blocked_fraction,
    "avg_deadlock_set": lambda r: r.avg_deadlock_set_size,
    "avg_cycle_count": lambda r: r.avg_cycle_count,
}


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregated outcome of N same-config, different-seed runs."""

    config: SimulationConfig
    runs: tuple[RunResult, ...]
    estimates: dict[str, MetricEstimate]

    def __getitem__(self, metric: str) -> MetricEstimate:
        return self.estimates[metric]

    def summary(self) -> str:
        parts = [str(self.estimates[k]) for k in sorted(self.estimates)]
        return f"{self.config.label()}: " + "; ".join(parts)


def replicate(
    base: SimulationConfig,
    seeds: Sequence[int] = range(5),
    *,
    metrics: Optional[dict[str, Callable[[RunResult], float]]] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> ReplicatedResult:
    """Run ``base`` once per seed and aggregate the metrics.

    Seeds replace ``base.seed``; all other fields (including the traffic
    stream derivation) follow each run's own seed, so replicas are fully
    independent.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("at least one seed is required")
    configs = [base.replace(seed=s) for s in seeds]
    if parallel:
        from repro.metrics.parallel import run_matrix_parallel

        runs = run_matrix_parallel(configs, max_workers=max_workers)
    else:
        from repro.network.simulator import NetworkSimulator

        runs = [NetworkSimulator(cfg).run() for cfg in configs]
    metrics = metrics or DEFAULT_METRICS
    estimates = {
        name: MetricEstimate(name, tuple(fn(r) for r in runs))
        for name, fn in metrics.items()
    }
    return ReplicatedResult(config=base, runs=tuple(runs), estimates=estimates)
