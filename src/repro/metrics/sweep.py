"""Load sweeps and saturation detection.

Every figure in the paper is a sweep of normalized offered load.  The
sweep harness runs one simulation per load point, collects the
:class:`~repro.metrics.stats.RunResult` series, and estimates the
*saturation load* — the offered load beyond which delivered throughput
stops tracking the offered load (shown as a vertical dashed line in the
paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.config import SimulationConfig
from repro.metrics.stats import RunResult
from repro.obs.registry import merge_snapshots

__all__ = ["SweepResult", "run_load_sweep", "default_loads", "obs_rollup"]


def obs_rollup(
    loads: Sequence[float], snapshots: Sequence[Optional[dict]]
) -> Optional[dict]:
    """Fold per-point observability snapshots into a sweep rollup.

    Returns ``None`` when every point ran with observability disabled
    (``obs_level=0`` produces no snapshot), otherwise a dict with

    * ``"sweep"`` — all point snapshots merged via
      :func:`repro.obs.registry.merge_snapshots` (counters / histogram bins
      / phase times sum, gauges take the max), and
    * ``"points"`` — the raw per-load snapshots, keyed by the load value
      formatted with ``%g``.
    """
    kept = [(load, s) for load, s in zip(loads, snapshots) if s is not None]
    if not kept:
        return None
    return {
        "sweep": merge_snapshots([s for _, s in kept]),
        "points": {f"{load:g}": s for load, s in kept},
    }


def default_loads(*, dense: bool = False) -> list[float]:
    """The load grid used by the experiment runners.

    Spans from light load well into deep saturation, like the paper's
    figures, which are plotted "up to full network capacity or until the
    network saturates with respect to the number of resource dependency
    cycles".
    """
    if dense:
        return [round(0.05 * i, 2) for i in range(1, 21)]
    return [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


@dataclass
class SweepResult:
    """Results of a load sweep for one configuration family."""

    label: str
    loads: list[float]
    results: list[RunResult]
    capacity: float
    #: observability rollup (see :func:`obs_rollup`); ``None`` unless the
    #: sweep ran with ``obs_level >= 1``
    obs: Optional[dict] = field(default=None, compare=False)
    #: degraded points (:class:`repro.campaign.store.PointFailure`): loads a
    #: campaign could not complete after exhausting retries.  Such loads are
    #: absent from ``loads``/``results``; always empty outside campaigns.
    failures: list = field(default_factory=list, compare=False)

    @property
    def normalized_deadlocks(self) -> list[float]:
        return [r.normalized_deadlocks for r in self.results]

    @property
    def deadlock_counts(self) -> list[int]:
        return [r.deadlocks for r in self.results]

    @property
    def deadlock_set_sizes(self) -> list[float]:
        return [r.avg_deadlock_set_size for r in self.results]

    @property
    def resource_set_sizes(self) -> list[float]:
        return [r.avg_resource_set_size for r in self.results]

    @property
    def cycle_counts(self) -> list[float]:
        return [r.avg_cycle_count for r in self.results]

    @property
    def blocked_fractions(self) -> list[float]:
        return [r.avg_blocked_fraction for r in self.results]

    @property
    def throughputs(self) -> list[float]:
        return [r.normalized_throughput(self.capacity) for r in self.results]

    @property
    def saturation_load(self) -> Optional[float]:
        """First load at which delivered throughput falls visibly short.

        Estimated as the first load point whose normalized accepted
        throughput is below 92% of the offered load; ``None`` when the
        network keeps up across the whole sweep.
        """
        for load, thr in zip(self.loads, self.throughputs):
            if load > 0 and thr < 0.92 * load:
                return load
        return None

    def at_load(self, load: float) -> RunResult:
        idx = self.loads.index(load)
        return self.results[idx]

    def rows(self) -> list[dict]:
        """Table rows for report printing (one dict per load point)."""
        out = []
        for load, r in zip(self.loads, self.results):
            out.append(
                {
                    "load": load,
                    "throughput": r.normalized_throughput(self.capacity),
                    "delivered": r.delivered_total,
                    "deadlocks": r.deadlocks,
                    "norm_deadlocks": r.normalized_deadlocks,
                    "avg_deadlock_set": r.avg_deadlock_set_size,
                    "avg_resource_set": r.avg_resource_set_size,
                    "avg_knot_density": r.avg_knot_cycle_density,
                    "avg_cycles": r.avg_cycle_count,
                    "blocked_pct": 100 * r.avg_blocked_fraction,
                    "in_network": r.avg_messages_in_network,
                    "latency": r.avg_latency,
                }
            )
        return out


def run_load_sweep(
    base: SimulationConfig,
    loads: Sequence[float],
    label: str = "",
    *,
    progress: Callable[[float, RunResult], None] | None = None,
) -> SweepResult:
    """Run ``base`` at each load and collect the results.

    The import lives inside the function to avoid a circular import with
    the simulator module, which imports :mod:`repro.metrics.stats`.
    """
    from repro.network.simulator import NetworkSimulator, build_topology

    capacity = build_topology(base).capacity_flits_per_node_cycle
    results: list[RunResult] = []
    snapshots: list[Optional[dict]] = []
    for load in loads:
        sim = NetworkSimulator(base.replace(load=load))
        result = sim.run()
        results.append(result)
        snapshots.append(sim.obs.snapshot())
        if progress is not None:
            progress(load, result)
    return SweepResult(
        label=label or base.label(), loads=list(loads), results=results,
        capacity=capacity, obs=obs_rollup(loads, snapshots),
    )
