"""Statistics, run results, load sweeps, parallel execution, replication."""

from repro.metrics.analysis import (
    DeadlockAnalysis,
    analyze_records,
    blocked_vs_cycles_series,
    deadlock_probability_given_cycles,
    interarrival_times,
)
from repro.metrics.parallel import (
    run_load_sweep_parallel,
    run_matrix_parallel,
    run_point,
)
from repro.metrics.replication import MetricEstimate, ReplicatedResult, replicate
from repro.metrics.stats import RunResult, StatsCollector
from repro.metrics.sweep import SweepResult, default_loads, run_load_sweep

__all__ = [
    "RunResult",
    "StatsCollector",
    "SweepResult",
    "default_loads",
    "run_load_sweep",
    "run_load_sweep_parallel",
    "run_matrix_parallel",
    "run_point",
    "MetricEstimate",
    "ReplicatedResult",
    "replicate",
    "DeadlockAnalysis",
    "analyze_records",
    "interarrival_times",
    "deadlock_probability_given_cycles",
    "blocked_vs_cycles_series",
]
