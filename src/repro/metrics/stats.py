"""Statistics collection and run results.

The collector mirrors the paper's reporting:

* **normalized deadlocks** — detected deadlocks per message delivered,
* deadlock/resource set sizes and knot cycle densities per event,
* resource-dependency **cycle counts** at every detection (the leading
  indicator used when no deadlocks occur),
* **blocked messages** (count and percentage of messages in the network),
* plus standard throughput / latency / population metrics.

All counters respect the measurement window: events before
``measure_start`` (the warmup) are recorded but excluded from results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.detector import DeadlockEvent, DetectionRecord
    from repro.network.message import Message
    from repro.network.simulator import NetworkSimulator
    from repro.network.topology import Topology

__all__ = ["RunResult", "StatsCollector"]


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass
class RunResult:
    """Aggregated outcome of one simulation run."""

    config: SimulationConfig
    measured_cycles: int

    # message accounting (measurement window only)
    generated: int = 0
    injected: int = 0
    delivered: int = 0
    recovered: int = 0  # removed by recovery and delivered via recovery lane
    aborted: int = 0  # removed by recovery without delivery
    delivered_flits: int = 0

    # deadlock characterization
    deadlocks: int = 0
    single_cycle_deadlocks: int = 0
    multi_cycle_deadlocks: int = 0
    deadlock_set_sizes: list[int] = field(default_factory=list)
    resource_set_sizes: list[int] = field(default_factory=list)
    knot_cycle_densities: list[int] = field(default_factory=list)
    dependent_counts: list[int] = field(default_factory=list)

    # per-detection samples
    cycle_counts: list[int] = field(default_factory=list)
    cycle_count_saturated: bool = False
    blocked_samples: list[int] = field(default_factory=list)
    blocked_fraction_samples: list[float] = field(default_factory=list)
    in_network_samples: list[int] = field(default_factory=list)

    # timeout-heuristic recovery accounting (detection_mode="timeout")
    timeout_recoveries: int = 0
    unnecessary_recoveries: int = 0  # timeout victims not truly deadlocked

    # timing & starvation
    latency_sum: int = 0
    latency_count: int = 0
    max_latency: int = 0
    max_blocked_duration: int = 0  # longest observed header-blocked stretch

    # -- derived metrics -----------------------------------------------------------
    @property
    def delivered_total(self) -> int:
        """Messages that reached their destination, including via recovery."""
        return self.delivered + self.recovered

    @property
    def normalized_deadlocks(self) -> float:
        """Deadlocks per message delivered (the paper's headline metric)."""
        if self.delivered_total == 0:
            return float("inf") if self.deadlocks else 0.0
        return self.deadlocks / self.delivered_total

    @property
    def deadlocks_per_kilo_delivered(self) -> float:
        return 1000.0 * self.normalized_deadlocks

    @property
    def avg_deadlock_set_size(self) -> float:
        return _mean(self.deadlock_set_sizes)

    @property
    def max_deadlock_set_size(self) -> int:
        return max(self.deadlock_set_sizes, default=0)

    @property
    def avg_resource_set_size(self) -> float:
        return _mean(self.resource_set_sizes)

    @property
    def max_resource_set_size(self) -> int:
        return max(self.resource_set_sizes, default=0)

    @property
    def avg_knot_cycle_density(self) -> float:
        return _mean(self.knot_cycle_densities)

    @property
    def max_knot_cycle_density(self) -> int:
        return max(self.knot_cycle_densities, default=0)

    @property
    def avg_cycle_count(self) -> float:
        return _mean(self.cycle_counts)

    @property
    def max_cycle_count(self) -> int:
        return max(self.cycle_counts, default=0)

    @property
    def avg_blocked_messages(self) -> float:
        return _mean(self.blocked_samples)

    @property
    def avg_blocked_fraction(self) -> float:
        return _mean(self.blocked_fraction_samples)

    @property
    def avg_messages_in_network(self) -> float:
        return _mean(self.in_network_samples)

    @property
    def avg_latency(self) -> float:
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    @property
    def throughput_flits_per_node_cycle(self) -> float:
        if self.measured_cycles == 0:
            return 0.0
        return self.delivered_flits / (
            self.measured_cycles * self.config.num_nodes
        )

    def normalized_throughput(self, capacity: float) -> float:
        """Delivered throughput as a fraction of network capacity."""
        if capacity <= 0:
            return 0.0
        return self.throughput_flits_per_node_cycle / capacity

    @property
    def normalized_deadlocks_per_message_in_network(self) -> float:
        """Deadlocks normalized by average network population (Figure 8b)."""
        pop = self.avg_messages_in_network
        if pop <= 0:
            return float("inf") if self.deadlocks else 0.0
        # Rate per message-cycle of exposure, scaled to per-message terms.
        return self.deadlocks / pop

    def summary(self) -> str:
        """A compact single-line report used by examples and experiments."""
        return (
            f"load={self.config.load:.2f} delivered={self.delivered_total} "
            f"deadlocks={self.deadlocks} "
            f"norm={self.normalized_deadlocks:.4f} "
            f"cycles(avg)={self.avg_cycle_count:.1f} "
            f"blocked%={100 * self.avg_blocked_fraction:.1f} "
            f"latency={self.avg_latency:.1f}"
        )


class StatsCollector:
    """Accumulates statistics during a run; produces a :class:`RunResult`."""

    def __init__(self, config: SimulationConfig, topology: "Topology") -> None:
        self.config = config
        self.capacity = topology.capacity_flits_per_node_cycle
        self.measure_start = config.warmup_cycles
        self._result = RunResult(config=config, measured_cycles=0)

    def _measuring(self, cycle: int) -> bool:
        return cycle > self.measure_start

    # -- event hooks ----------------------------------------------------------------
    def on_generated(self, cycle: int) -> None:
        if self._measuring(cycle):
            self._result.generated += 1

    def on_injected(self, cycle: int) -> None:
        if self._measuring(cycle):
            self._result.injected += 1

    def on_delivered(self, message: "Message", cycle: int) -> None:
        if not self._measuring(cycle):
            return
        r = self._result
        r.delivered += 1
        r.delivered_flits += message.length
        latency = message.latency
        if latency is not None:
            r.latency_sum += latency
            r.latency_count += 1
            if latency > r.max_latency:
                r.max_latency = latency

    def on_recovered(self, message: "Message", cycle: int) -> None:
        if not self._measuring(cycle):
            return
        r = self._result
        if message.status.value == "recovered":
            r.recovered += 1
            r.delivered_flits += message.length
        else:
            r.aborted += 1

    def on_timeout_recovery(self, cycle: int, *, necessary: bool) -> None:
        if not self._measuring(cycle):
            return
        self._result.timeout_recoveries += 1
        if not necessary:
            self._result.unnecessary_recoveries += 1

    def on_detection(self, record: "DetectionRecord", sim: "NetworkSimulator") -> None:
        if not self._measuring(record.cycle):
            return
        r = self._result
        for event in record.events:
            r.deadlocks += 1
            if event.classification == "single-cycle":
                r.single_cycle_deadlocks += 1
            else:
                r.multi_cycle_deadlocks += 1
            r.deadlock_set_sizes.append(event.deadlock_set_size)
            r.resource_set_sizes.append(event.resource_set_size)
            r.knot_cycle_densities.append(event.knot_cycle_density)
            r.dependent_counts.append(len(event.dependent))
        if record.cycle_count is not None:
            r.cycle_counts.append(record.cycle_count.count)
            if record.cycle_count.saturated:
                r.cycle_count_saturated = True
        # Use the population captured at the detection instant (before any
        # recovery removals) so blocked fractions stay in [0, 1].
        in_net = record.messages_in_network
        # waiting_messages() is exactly the blocked_since-bearing subset of
        # the population; the fast path maintains it incrementally so this
        # is not a full-population scan there
        for m in sim.waiting_messages():
            stretch = record.cycle - m.blocked_since
            if stretch > r.max_blocked_duration:
                r.max_blocked_duration = stretch
        r.blocked_samples.append(record.blocked_messages)
        r.blocked_fraction_samples.append(
            record.blocked_messages / in_net if in_net else 0.0
        )
        r.in_network_samples.append(in_net)

    # -- finalization -------------------------------------------------------------------
    def finalize(self, sim: "NetworkSimulator") -> RunResult:
        self._result.measured_cycles = max(0, sim.cycle - self.measure_start)
        return self._result
