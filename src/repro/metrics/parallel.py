"""Parallel execution of simulation sweeps.

A full figure regeneration is dozens of independent simulations — an
embarrassingly parallel workload.  This module fans sweep points out over
a process pool (simulations are CPU-bound pure Python, so threads would
serialize on the GIL) while keeping results bit-identical to the serial
path: each point builds its own simulator from a picklable
:class:`~repro.config.SimulationConfig`, and every simulation is
deterministic given its seed.

Tasks are submitted in chunks (a few configs per pool round-trip) so
pickling overhead does not dominate short sweep points, results are always
yielded in submission order (so the optional ``progress`` callback fires in
the same order as the serial sweep's), and a worker failure is re-raised in
the parent as a :class:`~repro.errors.SimulationError` naming the failing
configuration's label — not an anonymous traceback from the middle of a
pool.  The batch is always fully drained before the failure is raised, so
sibling points' results and observability snapshots are never dropped:
they ride on the error as ``partial_results`` / ``partial_snapshots`` /
``partial_configs``.  (Checkpointed, retrying execution lives one layer
up, in :mod:`repro.campaign`.)

The per-point entry functions are module-level so they pickle under the
default ``spawn``/``fork`` start methods.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.metrics.stats import RunResult
from repro.metrics.sweep import SweepResult, obs_rollup

__all__ = ["run_point", "run_load_sweep_parallel", "run_matrix_parallel"]


def run_point(config: SimulationConfig) -> RunResult:
    """Run one simulation to completion (process-pool entry point)."""
    from repro.network.simulator import NetworkSimulator

    return NetworkSimulator(config).run()


def _run_point_obs(config: SimulationConfig) -> tuple[RunResult, Optional[dict]]:
    """Like :func:`run_point`, also shipping the obs registry snapshot.

    Observability state lives on the worker-side simulator; the snapshot is
    the picklable view the parent merges into sweep rollups.
    """
    from repro.network.simulator import NetworkSimulator

    sim = NetworkSimulator(config)
    result = sim.run()
    return result, sim.obs.snapshot()


@dataclass
class _PointFailure:
    """A worker-side exception, shipped back instead of raised.

    Raising inside a chunked ``pool.map`` loses track of which config blew
    up (the whole chunk surfaces as one exception at the chunk's first
    index); returning the failure as a value keeps the association exact.
    """

    label: str
    error: str
    trace: str


def _run_point_guarded(
    config: SimulationConfig,
) -> tuple[RunResult, Optional[dict]] | _PointFailure:
    try:
        return _run_point_obs(config)
    except Exception as exc:  # noqa: BLE001 - re-raised with context in parent
        return _PointFailure(
            label=config.label(),
            error=f"{type(exc).__name__}: {exc}",
            trace=traceback.format_exc(),
        )


def _resolve_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max(1, max_workers)
    return max(1, (os.cpu_count() or 2) - 1)


def _chunksize(num_tasks: int, workers: int) -> int:
    """A few chunks per worker: amortizes pickling without starving the pool.

    Four rounds per worker keeps the tail short when point runtimes are
    uneven (high-load points take much longer than low-load ones).
    """
    return max(1, num_tasks // (workers * 4))


def _run_batch(
    configs: Sequence[SimulationConfig],
    workers: int,
    on_result: Optional[Callable[[SimulationConfig, RunResult], None]],
) -> tuple[list[RunResult], list[Optional[dict]]]:
    """Run a batch across the pool, in-order results + per-result callback.

    Returns the run results and the matching per-point observability
    snapshots (all ``None`` when the configs carry ``obs_level=0``).

    Failures are collected, not raised mid-iteration: the whole batch is
    drained first, so a point failing mid-chunk never discards the results
    or obs snapshots of sibling points that already completed.  The
    :class:`~repro.errors.SimulationError` raised afterwards carries those
    survivors as ``partial_results`` / ``partial_snapshots`` /
    ``partial_configs`` (submission order), plus every failure's label.
    """
    if workers == 1 or len(configs) <= 1:
        raw: Iterable[tuple[RunResult, Optional[dict]] | _PointFailure] = map(
            _run_point_guarded, configs
        )
    else:
        pool = ProcessPoolExecutor(max_workers=workers)
        raw = pool.map(
            _run_point_guarded,
            configs,
            chunksize=_chunksize(len(configs), workers),
        )
    out: list[RunResult] = []
    snapshots: list[Optional[dict]] = []
    done_configs: list[SimulationConfig] = []
    failures: list[_PointFailure] = []
    try:
        for cfg, result in zip(configs, raw):
            if isinstance(result, _PointFailure):
                failures.append(result)
                continue
            run, snap = result
            out.append(run)
            snapshots.append(snap)
            done_configs.append(cfg)
            if on_result is not None:
                on_result(cfg, run)
    finally:
        if workers > 1 and len(configs) > 1:
            pool.shutdown()
    if failures:
        first = failures[0]
        more = (
            f"\n(and {len(failures) - 1} more failed point(s): "
            f"{[f.label for f in failures[1:]]})"
            if len(failures) > 1
            else ""
        )
        error = SimulationError(
            f"sweep point {first.label!r} failed: {first.error}\n"
            f"{first.trace}{more}"
        )
        error.failures = failures
        error.partial_results = out
        error.partial_snapshots = snapshots
        error.partial_configs = done_configs
        raise error
    return out, snapshots


def run_load_sweep_parallel(
    base: SimulationConfig,
    loads: Sequence[float],
    label: str = "",
    *,
    max_workers: Optional[int] = None,
    progress: Callable[[float, RunResult], None] | None = None,
) -> SweepResult:
    """Parallel drop-in for :func:`repro.metrics.sweep.run_load_sweep`.

    Results arrive in load order regardless of completion order, so the
    output — and the ``progress(load, result)`` callback sequence, which
    matches the serial sweep's signature — is identical to the serial path
    for the same configs.
    """
    from repro.network.simulator import build_topology

    capacity = build_topology(base).capacity_flits_per_node_cycle
    configs = [base.replace(load=load) for load in loads]
    workers = _resolve_workers(max_workers)
    on_result = (
        (lambda cfg, res: progress(cfg.load, res))
        if progress is not None
        else None
    )
    results, snapshots = _run_batch(configs, workers, on_result)
    return SweepResult(
        label=label or base.label(),
        loads=list(loads),
        results=results,
        capacity=capacity,
        obs=obs_rollup(loads, snapshots),
    )


def run_matrix_parallel(
    configs: Sequence[SimulationConfig],
    *,
    max_workers: Optional[int] = None,
    progress: Callable[[SimulationConfig, RunResult], None] | None = None,
    with_obs: bool = False,
) -> list[RunResult] | tuple[list[RunResult], list[Optional[dict]]]:
    """Run an arbitrary batch of configurations across the pool.

    ``progress`` receives ``(config, result)`` pairs in submission order as
    results are retrieved.  With ``with_obs=True`` the return value is a
    ``(results, snapshots)`` pair, where ``snapshots`` holds each point's
    observability registry snapshot (``None`` for ``obs_level=0`` configs)
    in submission order, ready for
    :func:`repro.obs.registry.merge_snapshots`.
    """
    workers = _resolve_workers(max_workers)
    results, snapshots = _run_batch(list(configs), workers, progress)
    if with_obs:
        return results, snapshots
    return results
