"""Parallel execution of simulation sweeps.

A full figure regeneration is dozens of independent simulations — an
embarrassingly parallel workload.  This module fans sweep points out over
a process pool (simulations are CPU-bound pure Python, so threads would
serialize on the GIL) while keeping results bit-identical to the serial
path: each point builds its own simulator from a picklable
:class:`~repro.config.SimulationConfig`, and every simulation is
deterministic given its seed.

The per-point entry function is module-level so it pickles under the
default ``spawn``/``fork`` start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.config import SimulationConfig
from repro.metrics.stats import RunResult
from repro.metrics.sweep import SweepResult

__all__ = ["run_point", "run_load_sweep_parallel", "run_matrix_parallel"]


def run_point(config: SimulationConfig) -> RunResult:
    """Run one simulation to completion (process-pool entry point)."""
    from repro.network.simulator import NetworkSimulator

    return NetworkSimulator(config).run()


def _resolve_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max(1, max_workers)
    return max(1, (os.cpu_count() or 2) - 1)


def run_load_sweep_parallel(
    base: SimulationConfig,
    loads: Sequence[float],
    label: str = "",
    *,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Parallel drop-in for :func:`repro.metrics.sweep.run_load_sweep`.

    Results arrive in load order regardless of completion order, so the
    output is identical to the serial sweep for the same configs.
    """
    from repro.network.simulator import build_topology

    capacity = build_topology(base).capacity_flits_per_node_cycle
    configs = [base.replace(load=load) for load in loads]
    workers = _resolve_workers(max_workers)
    if workers == 1 or len(configs) == 1:
        results = [run_point(cfg) for cfg in configs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(run_point, configs))
    return SweepResult(
        label=label or base.label(),
        loads=list(loads),
        results=results,
        capacity=capacity,
    )


def run_matrix_parallel(
    configs: Sequence[SimulationConfig],
    *,
    max_workers: Optional[int] = None,
) -> list[RunResult]:
    """Run an arbitrary batch of configurations across the pool."""
    workers = _resolve_workers(max_workers)
    if workers == 1 or len(configs) <= 1:
        return [run_point(cfg) for cfg in configs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_point, configs))
