"""Test-only fault injection: deliberately break internal bookkeeping.

The differential fuzz harness (:mod:`repro.validation.differential`) and
the runtime invariant checker (:mod:`repro.validation.invariants`) exist to
catch exactly the class of bug where an incrementally-maintained structure
silently drifts from the ground truth it caches.  To *prove* the net has
teeth, the test-suite must be able to introduce such a drift on demand.

Setting the ``REPRO_INJECT_FAULT`` environment variable to a
comma-separated list of fault names arms the corresponding injection
points.  Faults are sampled **once per object construction** (simulator /
tracker), so tests set the variable, build a simulation, and restore the
environment afterwards; production code paths never read the variable in
a hot loop.

Known fault names:

``skip-dirty-acquire``
    :class:`~repro.core.incremental.IncrementalCWG` omits the dirty-vertex
    marks of ``on_acquire`` — the region-cached detector may then reuse a
    stale analysis for a region whose internal arcs changed.

``skip-dirty-block``
    ``on_block`` omits its dirty mark when a blocked message's request-set
    changes, hiding dashed-arc churn from the dirty-region detector.

``skip-wake``
    :class:`~repro.network.simulator.NetworkSimulator` never clears the
    ``stalled`` flag when a waited-on resource frees — stalled messages
    sleep forever on the engine fast path, diverging from the legacy path.

This module is intentionally tiny and dependency-free so that core modules
can import it without layering concerns.
"""

from __future__ import annotations

import os

__all__ = ["active_faults"]

ENV_VAR = "REPRO_INJECT_FAULT"

KNOWN_FAULTS = frozenset(
    {"skip-dirty-acquire", "skip-dirty-block", "skip-wake"}
)


def active_faults() -> frozenset[str]:
    """The currently-armed fault names (empty outside fault-injection tests)."""
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        return frozenset()
    faults = frozenset(f.strip() for f in raw.split(",") if f.strip())
    unknown = faults - KNOWN_FAULTS
    if unknown:
        raise ValueError(
            f"unknown fault name(s) {sorted(unknown)} in ${ENV_VAR}; "
            f"known: {sorted(KNOWN_FAULTS)}"
        )
    return faults
