"""Test-only fault injection: deliberately break internal bookkeeping.

The differential fuzz harness (:mod:`repro.validation.differential`) and
the runtime invariant checker (:mod:`repro.validation.invariants`) exist to
catch exactly the class of bug where an incrementally-maintained structure
silently drifts from the ground truth it caches.  To *prove* the net has
teeth, the test-suite must be able to introduce such a drift on demand.

Setting the ``REPRO_INJECT_FAULT`` environment variable to a
comma-separated list of fault names arms the corresponding injection
points.  Faults are sampled **once per object construction** (simulator /
tracker), so tests set the variable, build a simulation, and restore the
environment afterwards; production code paths never read the variable in
a hot loop.

Known fault names:

``skip-dirty-acquire``
    :class:`~repro.core.incremental.IncrementalCWG` omits the dirty-vertex
    marks of ``on_acquire`` — the region-cached detector may then reuse a
    stale analysis for a region whose internal arcs changed.

``skip-dirty-block``
    ``on_block`` omits its dirty mark when a blocked message's request-set
    changes, hiding dashed-arc churn from the dirty-region detector.

``skip-wake``
    :class:`~repro.network.simulator.NetworkSimulator` never clears the
    ``stalled`` flag when a waited-on resource frees — stalled messages
    sleep forever on the engine fast path, diverging from the legacy path.

``skip-immobile-clear``
    :class:`~repro.network.kernels.KernelEngine` never lowers its
    maintained ``_all_immobile`` move fast-path flag — once a cycle
    verifies every active message immobile, later wake-ups (resource
    acquisitions, victim removal) are ignored and the kernel engine keeps
    skipping the move loop, freezing the network while the vectorized
    engine drains it.

``crash-point``
    A campaign worker (:mod:`repro.campaign.runner`) raises before running
    its simulation — every attempt, so the point exhausts its retries and
    must degrade to a recorded failure.

``flaky-point``
    Like ``crash-point``, but only the *first* attempt per point fails
    (cross-process first-attempt tracking via marker files in
    ``REPRO_FAULT_DIR``); retries then succeed.  Exercises retry/backoff.

``hang-point``
    A campaign worker's first attempt per point hangs (sleeps far past any
    sane timeout) after dropping its marker file; the respawned attempt
    runs normally.  Exercises the per-point wall-clock timeout kill path.

``drop-lease-heartbeat``
    A campaign-service worker (:mod:`repro.campaign.service.worker`) stops
    sending lease heartbeats for matching points while still executing
    them — simulating a network partition or a wedged heartbeat thread.
    The scheduler's reaper must notice the silent lease, reclaim it, and
    requeue the point; the teeth test asserts exactly that.

The point faults honour two extra environment variables:
``REPRO_FAULT_MATCH`` — a substring of the config label restricting which
points fault (empty/unset = all points) — and ``REPRO_FAULT_DIR`` — the
directory for first-attempt marker files (required by ``flaky-point`` and
``hang-point``).

This module is intentionally tiny and dependency-free so that core modules
can import it without layering concerns.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["active_faults", "point_fault_matches", "first_trigger"]

ENV_VAR = "REPRO_INJECT_FAULT"
MATCH_ENV_VAR = "REPRO_FAULT_MATCH"
DIR_ENV_VAR = "REPRO_FAULT_DIR"

KNOWN_FAULTS = frozenset(
    {
        "skip-dirty-acquire",
        "skip-dirty-block",
        "skip-wake",
        "skip-immobile-clear",
        "crash-point",
        "flaky-point",
        "hang-point",
        "drop-lease-heartbeat",
    }
)


def active_faults() -> frozenset[str]:
    """The currently-armed fault names (empty outside fault-injection tests)."""
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        return frozenset()
    faults = frozenset(f.strip() for f in raw.split(",") if f.strip())
    unknown = faults - KNOWN_FAULTS
    if unknown:
        raise ValueError(
            f"unknown fault name(s) {sorted(unknown)} in ${ENV_VAR}; "
            f"known: {sorted(KNOWN_FAULTS)}"
        )
    return faults


def point_fault_matches(label: str) -> bool:
    """Does an armed point fault apply to the point with this label?

    ``REPRO_FAULT_MATCH`` holds a substring of the config label; empty or
    unset means every point faults.
    """
    needle = os.environ.get(MATCH_ENV_VAR, "")
    return needle in label


def first_trigger(fault: str, key: str) -> bool:
    """True exactly once per (fault, key), across processes.

    Uses an exclusive-create marker file in ``REPRO_FAULT_DIR`` so a
    respawned worker process sees that a previous attempt already fired.
    Raises when the directory is not configured — the once-only faults are
    meaningless without it.
    """
    directory = os.environ.get(DIR_ENV_VAR)
    if not directory:
        raise ValueError(
            f"fault {fault!r} needs ${DIR_ENV_VAR} set to a marker directory"
        )
    tag = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
    marker = os.path.join(directory, f"{fault}-{tag}.marker")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True
