"""Traffic patterns and the message-generation process."""

from repro.traffic.injection import MessageGenerator
from repro.traffic.lengths import (
    FixedLength,
    LengthMix,
    LengthSampler,
    UniformLengthRange,
)
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotSpotTraffic,
    HybridTraffic,
    PerfectShuffleTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)

__all__ = [
    "MessageGenerator",
    "TrafficPattern",
    "UniformTraffic",
    "BitReversalTraffic",
    "TransposeTraffic",
    "PerfectShuffleTraffic",
    "BitComplementTraffic",
    "TornadoTraffic",
    "HotSpotTraffic",
    "HybridTraffic",
    "make_pattern",
    "LengthSampler",
    "FixedLength",
    "LengthMix",
    "UniformLengthRange",
]
