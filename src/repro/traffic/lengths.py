"""Message-length distributions.

The paper's evaluation fixes message length at 32 flits; its future-work
section proposes studying *hybrid message lengths*.  This module supplies
length samplers: fixed (the paper's setting), a discrete mix (e.g. 80%
short control packets + 20% long data messages, the classic bimodal
multicomputer workload), and a uniform range.

A sampler is a callable ``(random.Random) -> int`` with a ``mean``
attribute; the generator uses the mean to normalize offered load so that a
given load level injects the same *flit* rate regardless of the mix.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import ConfigurationError

__all__ = ["LengthSampler", "FixedLength", "LengthMix", "UniformLengthRange"]


class LengthSampler:
    """Base class: draws the flit length of each new message."""

    mean: float

    def __call__(self, rng: random.Random) -> int:
        raise NotImplementedError


class FixedLength(LengthSampler):
    """Every message has the same length (paper default)."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ConfigurationError(f"length must be >= 1, got {length}")
        self.length = length
        self.mean = float(length)

    def __call__(self, rng: random.Random) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLength({self.length})"


class LengthMix(LengthSampler):
    """A discrete mixture of lengths, e.g. ``[(4, 0.8), (32, 0.2)]``."""

    def __init__(self, mix: Sequence[tuple[int, float]]) -> None:
        if not mix:
            raise ConfigurationError("length mix must be non-empty")
        for length, weight in mix:
            if length < 1:
                raise ConfigurationError(f"length must be >= 1, got {length}")
            if weight <= 0:
                raise ConfigurationError(f"weight must be > 0, got {weight}")
        total = sum(w for _, w in mix)
        self.lengths = [l for l, _ in mix]
        self.weights = [w / total for _, w in mix]
        self.cumulative = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self.cumulative.append(acc)
        self.mean = sum(l * w for l, w in zip(self.lengths, self.weights))

    def __call__(self, rng: random.Random) -> int:
        x = rng.random()
        for length, edge in zip(self.lengths, self.cumulative):
            if x < edge:
                return length
        return self.lengths[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LengthMix({list(zip(self.lengths, self.weights))})"


class UniformLengthRange(LengthSampler):
    """Lengths drawn uniformly from ``[lo, hi]`` inclusive."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo < 1 or hi < lo:
            raise ConfigurationError(f"invalid length range [{lo}, {hi}]")
        self.lo, self.hi = lo, hi
        self.mean = (lo + hi) / 2

    def __call__(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLengthRange({self.lo}, {self.hi})"
