"""Trace-driven workloads.

The paper's future work proposes "characteriz[ing] deadlock formation under
hybrid non-uniform traffic loads using program-driven simulations".  With
no production traces available, this module provides:

* a :class:`TraceRecord` / :class:`Trace` format — ``(cycle, src, dest,
  length)`` tuples, loadable from a simple whitespace text file;
* :class:`TraceGenerator`, a drop-in replacement for the Bernoulli
  :class:`~repro.traffic.injection.MessageGenerator` that replays a trace;
* synthetic trace builders emulating the communication phases of classic
  parallel programs: nearest-neighbour stencil exchange, butterfly (FFT)
  stages, and bulk-synchronous all-to-all — the workloads whose bursty,
  correlated traffic the paper's Bernoulli model cannot express.

The point of trace replay for deadlock study: correlated *simultaneous*
communication (every node sending at the same instant, in the same
direction pattern) is precisely the "correlated resource dependency"
regime in which knots form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.network.message import Message
from repro.network.topology import KAryNCube, Topology

__all__ = [
    "TraceRecord",
    "Trace",
    "TraceGenerator",
    "stencil_trace",
    "butterfly_trace",
    "all_to_all_trace",
]


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One message injection event."""

    cycle: int
    src: int
    dest: int
    length: int

    def validate(self, num_nodes: int) -> None:
        if self.cycle < 0:
            raise ConfigurationError(f"negative cycle in trace: {self}")
        if not (0 <= self.src < num_nodes and 0 <= self.dest < num_nodes):
            raise ConfigurationError(f"node out of range in trace: {self}")
        if self.src == self.dest:
            raise ConfigurationError(f"self-addressed trace record: {self}")
        if self.length < 1:
            raise ConfigurationError(f"non-positive length in trace: {self}")


class Trace:
    """An ordered sequence of injection events."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self.records = sorted(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def total_flits(self) -> int:
        return sum(r.length for r in self.records)

    @property
    def last_cycle(self) -> int:
        return self.records[-1].cycle if self.records else 0

    def validate(self, num_nodes: int) -> None:
        for r in self.records:
            r.validate(num_nodes)

    # -- (de)serialization -------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Trace":
        """Parse ``cycle src dest length`` lines ('#' comments allowed)."""
        records = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ConfigurationError(
                    f"trace line {lineno}: expected 4 fields, got {len(parts)}"
                )
            try:
                cycle, src, dest, length = (int(p) for p in parts)
            except ValueError:
                raise ConfigurationError(
                    f"trace line {lineno}: non-integer field in {line!r}"
                ) from None
            records.append(TraceRecord(cycle, src, dest, length))
        return cls(records)

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path) as fh:
            return cls.parse(fh.read())

    def dump(self) -> str:
        lines = ["# cycle src dest length"]
        lines.extend(
            f"{r.cycle} {r.src} {r.dest} {r.length}" for r in self.records
        )
        return "\n".join(lines) + "\n"


class TraceGenerator:
    """Replays a trace; API-compatible with ``MessageGenerator.tick``."""

    def __init__(self, topology: Topology, trace: Trace) -> None:
        trace.validate(topology.num_nodes)
        self.topology = topology
        self.trace = trace
        self._pos = 0
        self._next_id = 0
        self.generated = 0
        self.suppressed = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.trace.records)

    def tick(self, cycle: int, queue_lengths: Sequence[int]) -> list[Message]:
        out: list[Message] = []
        records = self.trace.records
        while self._pos < len(records) and records[self._pos].cycle <= cycle:
            r = records[self._pos]
            self._pos += 1
            out.append(Message(self._next_id, r.src, r.dest, r.length, cycle))
            self._next_id += 1
            self.generated += 1
        return out


# -- synthetic program-phase builders -----------------------------------------------


def stencil_trace(
    topology: KAryNCube,
    *,
    iterations: int = 10,
    period: int = 200,
    length: int = 16,
    start: int = 0,
) -> Trace:
    """Nearest-neighbour halo exchange: every node sends to every neighbour
    simultaneously at the start of each iteration (e.g. a Jacobi sweep)."""
    if not isinstance(topology, KAryNCube):
        raise ConfigurationError("stencil traces require a k-ary n-cube")
    records = []
    for it in range(iterations):
        cycle = start + it * period
        for node in range(topology.num_nodes):
            for link in topology.out_links(node):
                records.append(TraceRecord(cycle, node, link.dst, length))
    return Trace(records)


def butterfly_trace(
    topology: Topology,
    *,
    period: int = 200,
    length: int = 16,
    start: int = 0,
) -> Trace:
    """FFT-style butterfly: stage s pairs node i with i XOR 2**s.

    Requires a power-of-two node count; one stage per period, log2(N)
    stages, every node sending simultaneously — maximally correlated.
    """
    n = topology.num_nodes
    if n & (n - 1):
        raise ConfigurationError("butterfly traces require 2^m nodes")
    stages = n.bit_length() - 1
    records = []
    for s in range(stages):
        cycle = start + s * period
        for node in range(n):
            records.append(TraceRecord(cycle, node, node ^ (1 << s), length))
    return Trace(records)


def all_to_all_trace(
    topology: Topology,
    *,
    period: int = 100,
    length: int = 8,
    start: int = 0,
    rng: random.Random | None = None,
) -> Trace:
    """Bulk-synchronous all-to-all (e.g. a transpose/shuffle phase).

    Round r has node i send to node (i + r) mod N; rounds are staggered by
    ``period``.  With ``rng`` supplied the round order is shuffled per node
    (a common congestion-avoiding schedule).
    """
    n = topology.num_nodes
    records = []
    rounds = list(range(1, n))
    for idx, r in enumerate(rounds):
        cycle = start + idx * period
        for node in range(n):
            offset = r if rng is None else rng.choice(rounds)
            dest = (node + offset) % n
            if dest != node:
                records.append(TraceRecord(cycle, node, dest, length))
    return Trace(records)
