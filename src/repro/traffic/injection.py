"""Message generation and load normalization.

Offered load is expressed as a fraction of network capacity, following the
paper: "Normalized load rate is calculated based on total link bandwidth and
average internode distance" — so a load of 1.0 means each node injects
``capacity_flits_per_node_cycle`` flits per cycle on average, which differs
between (say) the uni- and bidirectional tori of Figure 5.

Generation is a Bernoulli process per node per cycle with success
probability ``load * capacity / message_length``; each success creates one
message whose destination comes from the traffic pattern.  Source queues are
unbounded (the paper applies loads "up to full network capacity or until the
network saturates"); a per-source cap can bound queue growth deep into
saturation so that offered load stays meaningful.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.network.message import Message
from repro.network.topology import Topology
from repro.traffic.lengths import FixedLength, LengthSampler
from repro.traffic.patterns import TrafficPattern

__all__ = ["MessageGenerator"]


class MessageGenerator:
    """Bernoulli message source for every node of the network."""

    def __init__(
        self,
        topology: Topology,
        pattern: TrafficPattern,
        load: float,
        message_length: int,
        rng: random.Random,
        max_queued_per_node: Optional[int] = None,
        lengths: Optional[LengthSampler] = None,
        max_messages: Optional[int] = None,
    ) -> None:
        if load < 0:
            raise ConfigurationError(f"load must be >= 0, got {load}")
        if message_length < 1:
            raise ConfigurationError(
                f"message_length must be >= 1, got {message_length}"
            )
        self.topology = topology
        self.pattern = pattern
        self.load = load
        self.message_length = message_length
        self.lengths = lengths if lengths is not None else FixedLength(message_length)
        self.rng = rng
        self.max_queued_per_node = max_queued_per_node
        # total-generation cap (None = unbounded): once this many messages
        # exist the sources fall silent and consume no further RNG — the
        # bounded-in-flight hook of the model-checking oracle
        # (repro.validation.oracle)
        self.max_messages = max_messages
        capacity = topology.capacity_flits_per_node_cycle
        self.flit_rate = load * capacity  # flits per node per cycle
        # Load is a *flit* rate: normalize by the mean message length so a
        # hybrid-length mix offers the same flit throughput as a fixed one.
        self.message_probability = min(1.0, self.flit_rate / self.lengths.mean)
        self._next_id = 0
        self.generated = 0
        self.suppressed = 0  # generation attempts dropped by the queue cap

    def tick(self, cycle: int, queue_lengths: list[int]) -> list[Message]:
        """Messages created this cycle (possibly none).

        ``queue_lengths[node]`` is the current source-queue depth at each
        node, used only when a queue cap is configured.
        """
        out: list[Message] = []
        p = self.message_probability
        if p <= 0.0:
            return out
        total_cap = self.max_messages
        if total_cap is not None and self.generated >= total_cap:
            return out
        rng = self.rng
        cap = self.max_queued_per_node
        for node in range(self.topology.num_nodes):
            if total_cap is not None and self.generated >= total_cap:
                break  # sources fall silent mid-cycle: no further draws
            if rng.random() >= p:
                continue
            if cap is not None and queue_lengths[node] >= cap:
                self.suppressed += 1
                continue
            dest = self.pattern.dest_for(node, rng)
            if dest is None:
                continue
            msg = Message(self._next_id, node, dest, self.lengths(rng), cycle)
            self._next_id += 1
            self.generated += 1
            out.append(msg)
        return out
