"""Synthetic traffic patterns.

The paper evaluates uniform traffic by default and reports (Section 3.6)
that bit-reversal, matrix-transpose, perfect-shuffle and hot-spot loads give
similar deadlock behaviour — except for DOR under permutations whose
source/destination structure rules out the circular overlap single-cycle
deadlocks require.

Every pattern maps a source node to a destination; ``None`` means the source
generates no traffic under this pattern (self-addressed pairs in
permutations).  Bit-oriented permutations require a power-of-two node count.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.network.topology import KAryNCube, Topology

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "BitReversalTraffic",
    "TransposeTraffic",
    "PerfectShuffleTraffic",
    "BitComplementTraffic",
    "TornadoTraffic",
    "HotSpotTraffic",
    "HybridTraffic",
    "make_pattern",
]


class TrafficPattern:
    """Maps a source node to the destination of its next message."""

    name = "base"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------
    def _require_power_of_two(self) -> int:
        n = self.topology.num_nodes
        if n & (n - 1):
            raise ConfigurationError(
                f"{self.name} traffic requires a power-of-two node count, got {n}"
            )
        return n.bit_length() - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UniformTraffic(TrafficPattern):
    """Each message targets a uniformly random node other than its source."""

    name = "uniform"

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        n = self.topology.num_nodes
        dest = rng.randrange(n - 1)
        return dest + 1 if dest >= src else dest


class BitReversalTraffic(TrafficPattern):
    """dest = bit-reversal of src (a fixed permutation)."""

    name = "bit-reversal"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        bits = self._require_power_of_two()
        self._map = [
            int(format(src, f"0{bits}b")[::-1], 2) if bits else src
            for src in range(topology.num_nodes)
        ]

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        dest = self._map[src]
        return None if dest == src else dest


class TransposeTraffic(TrafficPattern):
    """Matrix transpose: swap the high and low halves of the address bits.

    On a square 2-D torus this is exactly the (x, y) -> (y, x) coordinate
    transpose.
    """

    name = "transpose"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        bits = self._require_power_of_two()
        if bits % 2:
            raise ConfigurationError(
                "transpose traffic requires an even number of address bits"
            )
        half = bits // 2
        mask = (1 << half) - 1
        self._map = [
            ((src & mask) << half) | (src >> half)
            for src in range(topology.num_nodes)
        ]

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        dest = self._map[src]
        return None if dest == src else dest


class PerfectShuffleTraffic(TrafficPattern):
    """Perfect shuffle: rotate the address bits left by one."""

    name = "perfect-shuffle"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        bits = self._require_power_of_two()
        self._map = [
            ((src << 1) | (src >> (bits - 1))) & (topology.num_nodes - 1)
            if bits
            else src
            for src in range(topology.num_nodes)
        ]

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        dest = self._map[src]
        return None if dest == src else dest


class BitComplementTraffic(TrafficPattern):
    """dest = bitwise complement of src."""

    name = "bit-complement"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._require_power_of_two()

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        dest = (self.topology.num_nodes - 1) ^ src
        return None if dest == src else dest


class TornadoTraffic(TrafficPattern):
    """Each message travels half-way around every dimension.

    Maximally stresses wraparound links; only defined for the k-ary
    n-cube family (mixed-radix tori shift half-way around each ring).
    """

    name = "tornado"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        if not isinstance(topology, KAryNCube):
            raise ConfigurationError("tornado traffic requires a k-ary n-cube")

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        topo = self.topology
        assert isinstance(topo, KAryNCube)
        coords = [
            (c + max(1, (kd - 1) // 2)) % kd
            for c, kd in zip(topo.coords(src), topo.dims)
        ]
        dest = topo.node_at(coords)
        return None if dest == src else dest


class HotSpotTraffic(TrafficPattern):
    """Uniform traffic with a fraction diverted to a single hot-spot node."""

    name = "hot-spot"

    def __init__(
        self,
        topology: Topology,
        hotspot: Optional[int] = None,
        fraction: float = 0.1,
    ) -> None:
        super().__init__(topology)
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"hot-spot fraction must be in (0, 1], got {fraction}"
            )
        self.hotspot = (
            hotspot if hotspot is not None else topology.num_nodes // 2
        )
        if not 0 <= self.hotspot < topology.num_nodes:
            raise ConfigurationError(f"hot-spot node {self.hotspot} out of range")
        self.fraction = fraction
        self._uniform = UniformTraffic(topology)

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        if rng.random() < self.fraction and src != self.hotspot:
            return self.hotspot
        return self._uniform.dest_for(src, rng)


class HybridTraffic(TrafficPattern):
    """A weighted mixture of other patterns (paper future work: "hybrid
    non-uniform traffic loads").

    Each generated message independently draws which component pattern
    supplies its destination, e.g. 70% uniform + 30% transpose.
    """

    name = "hybrid"

    def __init__(
        self,
        topology: Topology,
        components: Optional[list[tuple["TrafficPattern | str", float]]] = None,
    ) -> None:
        super().__init__(topology)
        if not components:
            raise ConfigurationError("hybrid traffic requires components")
        self.components: list[TrafficPattern] = []
        weights: list[float] = []
        for pattern, weight in components:
            if weight <= 0:
                raise ConfigurationError(f"weight must be > 0, got {weight}")
            if isinstance(pattern, str):
                pattern = make_pattern(pattern, topology)
            if isinstance(pattern, HybridTraffic):
                raise ConfigurationError("hybrid patterns cannot nest")
            self.components.append(pattern)
            weights.append(weight)
        total = sum(weights)
        self.cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self.cumulative.append(acc)

    def dest_for(self, src: int, rng: random.Random) -> Optional[int]:
        x = rng.random()
        for pattern, edge in zip(self.components, self.cumulative):
            if x < edge:
                return pattern.dest_for(src, rng)
        return self.components[-1].dest_for(src, rng)


_PATTERNS = {
    cls.name: cls
    for cls in (
        UniformTraffic,
        BitReversalTraffic,
        TransposeTraffic,
        PerfectShuffleTraffic,
        BitComplementTraffic,
        TornadoTraffic,
        HotSpotTraffic,
        HybridTraffic,
    )
}


def make_pattern(name: str, topology: Topology, **kwargs) -> TrafficPattern:
    """Instantiate a traffic pattern by name."""
    try:
        cls = _PATTERNS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; choose from {sorted(_PATTERNS)}"
        ) from None
    return cls(topology, **kwargs)
