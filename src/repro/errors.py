"""Exception types used across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid simulation or experiment configuration was supplied."""


class TopologyError(ReproError):
    """A topology query was malformed (unknown node, no such channel, ...)."""


class RoutingError(ReproError):
    """A routing function produced an invalid or empty candidate set."""


class SimulationError(ReproError):
    """An internal invariant of the simulation engine was violated."""
