"""Reproduction of Warnakulasuriya & Pinkston, "Characterization of
Deadlocks in Interconnection Networks" (IPPS 1997).

A flit-level k-ary n-cube network simulator with *true* deadlock detection:
the network's resource state is snapshotted into a channel wait-for graph
(CWG) and deadlocks are identified exactly as knots.  The package also
implements the paper's full characterization study (effects of
bidirectionality, adaptivity, virtual channels, buffer depth, node degree
and traffic pattern on deadlock formation).

Quickstart::

    from repro import SimulationConfig, NetworkSimulator

    cfg = SimulationConfig(k=8, n=2, routing="dor", num_vcs=1, load=0.6,
                           message_length=16, warmup_cycles=500,
                           measure_cycles=3000)
    result = NetworkSimulator(cfg).run()
    print(result.summary())
"""

from repro.config import SimulationConfig, bench_default, paper_default, tiny_default
from repro.core import (
    ChannelWaitForGraph,
    DeadlockDetector,
    DeadlockEvent,
    count_simple_cycles,
    find_knots,
)
from repro.errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.metrics import RunResult, SweepResult, default_loads, run_load_sweep
from repro.network import (
    IrregularTorus,
    KAryNCube,
    Mesh,
    Message,
    NetworkSimulator,
    Topology,
    build_topology,
)
from repro.routing import make_routing, make_selection
from repro.traffic import make_pattern

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "paper_default",
    "bench_default",
    "tiny_default",
    "NetworkSimulator",
    "build_topology",
    "RunResult",
    "SweepResult",
    "run_load_sweep",
    "default_loads",
    "ChannelWaitForGraph",
    "DeadlockDetector",
    "DeadlockEvent",
    "find_knots",
    "count_simple_cycles",
    "Topology",
    "KAryNCube",
    "Mesh",
    "IrregularTorus",
    "Message",
    "make_routing",
    "make_selection",
    "make_pattern",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "RoutingError",
    "SimulationError",
]
