"""Observability: metrics registry, phase profiler, cycle-level tracing.

An always-available, zero-overhead-when-disabled instrumentation layer for
the simulation engine and the deadlock detector, controlled by two
configuration knobs:

* ``SimulationConfig.obs_level`` — ``0`` off (the default), ``1`` metrics
  registry + phase profiler, ``2`` adds the cycle-level trace ring buffer;
* ``SimulationConfig.obs_trace_capacity`` — trace ring-buffer bound.

Pieces (see each module's docstring and ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms
  with a process-global no-op singleton and mergeable snapshots for
  cross-process sweep rollups;
* :mod:`repro.obs.profiler` — scoped wall-clock timers around the
  engine's per-cycle phases and the detector's region pipeline;
* :mod:`repro.obs.trace` — bounded ring buffer of cycle-stamped events,
  exported as JSONL or Chrome-trace JSON (``chrome://tracing`` /
  Perfetto);
* :mod:`repro.obs.observer` — the per-run session a simulator holds as
  ``sim.obs``.
"""

from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.profiler import PhaseProfiler, PhaseTimer
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)
from repro.obs.trace import TraceRecorder

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "PhaseProfiler",
    "PhaseTimer",
    "TraceRecorder",
]
