"""Per-run observability session: registry + profiler + tracer.

:class:`Observer` is what a :class:`~repro.network.simulator.
NetworkSimulator` holds as ``sim.obs``.  ``Observer.from_config`` returns
the process-global :data:`NULL_OBSERVER` when ``obs_level=0``, so the
engine's instrumentation points reduce to one attribute lookup plus a
``None``/flag check — a run with observability off is indistinguishable
(in both cost and behaviour) from one built before this subsystem existed.

Levels:

* ``0`` — off: ``NULL_OBSERVER`` (no registry, no profiler, no tracer);
* ``1`` — metrics + phase profiler (per-phase wall-clock accounting,
  detector/CWG cache counters, per-pass histograms);
* ``2`` — level 1 plus the cycle-level trace ring buffer
  (:class:`~repro.obs.trace.TraceRecorder`).

Everything here is pure observation — no RNG draws, no simulation-state
mutation — so any level produces bit-identical simulation results
(asserted by ``tests/integration/test_obs_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SimulationConfig
    from repro.network.simulator import NetworkSimulator

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER"]


class Observer:
    """A live observability session for one simulation run."""

    enabled = True

    def __init__(self, level: int = 1, trace_capacity: int = 65_536) -> None:
        if level < 1:
            raise ValueError("use NULL_OBSERVER for obs_level=0")
        self.level = level
        self.tracer: Optional[TraceRecorder] = (
            TraceRecorder(trace_capacity) if level >= 2 else None
        )
        self.registry: MetricsRegistry = MetricsRegistry()
        self.profiler: Optional[PhaseProfiler] = PhaseProfiler(self.tracer)

    @classmethod
    def from_config(cls, config: "SimulationConfig") -> "Observer":
        """The observer a configuration asks for (``NULL_OBSERVER`` at 0)."""
        if config.obs_level == 0:
            return NULL_OBSERVER
        return cls(
            level=config.obs_level, trace_capacity=config.obs_trace_capacity
        )

    def finalize(self, sim: "NetworkSimulator") -> None:
        """Pull end-of-run stats from the engine into the registry.

        Called by the engine when a run completes; cheap enough to call
        more than once (values are overwritten, not accumulated).
        """
        reg = self.registry
        reg.gauge("engine/cycles").set(sim.cycle)
        reg.gauge("engine/blocked_epoch").set(sim.blocked_epoch)
        reg.gauge("engine/messages_in_network").set(sim.messages_in_network)
        reg.set_counters(sim.detector.cache_stats(), prefix="detector/")
        tracker = sim.tracker
        if tracker is not None:
            reg.set_counters(tracker.stats(), prefix="cwg/")

    def snapshot(self) -> dict:
        """A JSON-able rollup of everything this observer accumulated.

        The shape is what :func:`repro.obs.registry.merge_snapshots`
        consumes: registry sections plus the profiler's ``"phases"`` table
        and trace-buffer metadata.
        """
        snap = self.registry.snapshot()
        snap["level"] = self.level
        if self.profiler is not None:
            snap["phases"] = self.profiler.snapshot()
        if self.tracer is not None:
            snap["trace"] = self.tracer.stats()
        return snap

    def phase_table(self, title: str = "phase profile") -> str:
        if self.profiler is None:
            return f"{title}\n  (profiler disabled)"
        return self.profiler.table(title)


class NullObserver:
    """The do-nothing observer handed out at ``obs_level=0``."""

    enabled = False
    level = 0
    registry = NULL_REGISTRY
    profiler = None
    tracer = None

    def finalize(self, sim: "NetworkSimulator") -> None:
        pass

    def snapshot(self) -> None:
        return None

    def phase_table(self, title: str = "phase profile") -> str:
        return f"{title}\n  (observability disabled; set obs_level >= 1)"


#: the process-global no-op observer (see module docstring)
NULL_OBSERVER = NullObserver()
