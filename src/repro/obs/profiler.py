"""Scoped phase timing for the engine and detector.

:class:`PhaseProfiler` accumulates wall-clock time and call counts per
named phase.  The engine wraps its per-cycle stages (generate / allocate /
move / detect) in pre-bound :class:`PhaseTimer` context managers; the
detector accounts its region pipeline with :meth:`PhaseProfiler.add` so the
``obs_level=0`` path pays a single ``None``-check instead of a context
manager.

Timers are plain non-reentrant context managers reused across cycles
(allocation-free per use: entering just stores a start time).  When a
:class:`~repro.obs.trace.TraceRecorder` is attached, every timer exit also
emits a span event, which is what puts the phase lanes on the Chrome-trace
timeline.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import TraceRecorder

__all__ = ["PhaseProfiler", "PhaseTimer"]


class PhaseTimer:
    """Reusable scoped timer for one named phase (non-reentrant)."""

    __slots__ = ("name", "total", "calls", "_tracer", "_t0")

    def __init__(self, name: str, tracer: Optional["TraceRecorder"]) -> None:
        self.name = name
        self.total = 0.0
        self.calls = 0
        self._tracer = tracer
        self._t0 = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t0 = self._t0
        dur = perf_counter() - t0
        self.total += dur
        self.calls += 1
        if self._tracer is not None:
            self._tracer.span(self.name, t0, dur)


class PhaseProfiler:
    """Named phase accounting with optional trace-span emission."""

    def __init__(self, tracer: Optional["TraceRecorder"] = None) -> None:
        self.tracer = tracer
        self.timers: dict[str, PhaseTimer] = {}

    def timer(self, name: str) -> PhaseTimer:
        """The (stable) timer for ``name``, created on first use."""
        t = self.timers.get(name)
        if t is None:
            self.timers[name] = t = PhaseTimer(name, self.tracer)
        return t

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Manual accounting for code that times itself (no span emitted)."""
        t = self.timer(name)
        t.total += seconds
        t.calls += calls

    def reset(self) -> None:
        """Zero all accumulated times/counts (timer objects stay bound).

        Lets a benchmark discard warmup cycles: the engine's pre-bound
        :class:`PhaseTimer` references remain valid, only their totals
        restart.
        """
        for t in self.timers.values():
            t.total = 0.0
            t.calls = 0

    def snapshot(self) -> dict[str, dict]:
        """``{name: {"total_s": ..., "calls": ...}}`` for every phase."""
        return {
            name: {"total_s": t.total, "calls": t.calls}
            for name, t in sorted(self.timers.items())
        }

    def table(self, title: str = "phase profile") -> str:
        """A printable per-phase time table, widest share first."""
        rows = [
            (name, t.total, t.calls)
            for name, t in self.timers.items()
            if t.calls
        ]
        if not rows:
            return f"{title}\n  (no phases recorded)"
        rows.sort(key=lambda r: -r[1])
        total = sum(r[1] for r in rows if "/" not in r[0]) or sum(
            r[1] for r in rows
        )
        width = max(len(r[0]) for r in rows)
        lines = [title, "-" * len(title)]
        for name, seconds, calls in rows:
            avg_us = 1e6 * seconds / calls
            share = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"  {name.ljust(width)}  {seconds * 1e3:10.2f} ms  "
                f"{calls:>9} calls  {avg_us:10.1f} us/call  {share:5.1f}%"
            )
        return "\n".join(lines)
