"""Cycle-level trace recording and export.

:class:`TraceRecorder` keeps a **bounded ring buffer** of run events —
phase spans from the profiler plus instants for message blocks and wakes,
detector passes, detected deadlocks and recoveries.  The bound
(``SimulationConfig.obs_trace_capacity``) makes tracing safe to leave on
for arbitrarily long runs: old events fall off the front and a ``dropped``
counter records how many, so a truncated export is never mistaken for a
complete one.

Two export formats:

* **JSONL** (:meth:`write_jsonl`) — one JSON object per line, trivially
  greppable and streamable;
* **Chrome trace JSON** (:meth:`write_chrome` / :meth:`to_chrome`) — the
  ``chrome://tracing`` / Perfetto "JSON Array Format": complete (``"X"``)
  duration events for phase spans and instant (``"i"``) events for
  everything else, timestamps in microseconds since the recorder started.
  Open the file at https://ui.perfetto.dev or ``chrome://tracing`` to see
  the run on a timeline (see ``docs/OBSERVABILITY.md``).

Recording is pure observation: events carry wall-clock timestamps but no
simulation state escapes *into* the run, so a traced run is bit-identical
to an untraced one (``tests/integration/test_obs_equivalence.py``).
"""

from __future__ import annotations

import json
from collections import deque
from time import perf_counter

__all__ = ["TraceRecorder"]

#: ring-buffer slots: (kind, name, cycle, ts_us, dur_us, args)
_SPAN = "X"
_INSTANT = "i"


class TraceRecorder:
    """Bounded ring buffer of cycle-stamped run events."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0
        #: current simulation cycle; the engine stamps it every step so
        #: recording sites don't need a simulator reference
        self.cycle = 0
        self._t0 = perf_counter()

    def __len__(self) -> int:
        return len(self.events)

    def _push(self, event: tuple) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # -- recording ---------------------------------------------------------------
    def span(self, name: str, start_s: float, dur_s: float) -> None:
        """A completed duration event (profiler phase exit)."""
        self._push(
            (
                _SPAN,
                name,
                self.cycle,
                (start_s - self._t0) * 1e6,
                dur_s * 1e6,
                None,
            )
        )

    def instant(self, name: str, **args) -> None:
        """A point event at the current cycle (block, wake, detection...)."""
        self._push(
            (
                _INSTANT,
                name,
                self.cycle,
                (perf_counter() - self._t0) * 1e6,
                0.0,
                args or None,
            )
        )

    # -- export -------------------------------------------------------------------
    def _rows(self):
        for kind, name, cycle, ts, dur, args in self.events:
            row = {
                "name": name,
                "ph": kind,
                "ts": round(ts, 3),
                "pid": 0,
                "tid": 0,
                "cat": "phase" if kind == _SPAN else "event",
                "args": {"cycle": cycle, **(args or {})},
            }
            if kind == _SPAN:
                row["dur"] = round(dur, 3)
            else:
                row["s"] = "t"  # instant scope: thread
            yield row

    def to_chrome(self) -> dict:
        """The trace as a ``chrome://tracing`` JSON object."""
        return {
            "traceEvents": list(self._rows()),
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded_events": len(self.events),
                "dropped_events": self.dropped,
            },
        }

    def write_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for row in self._rows():
                fh.write(json.dumps(row, sort_keys=True) + "\n")

    def stats(self) -> dict:
        return {"events": len(self.events), "dropped": self.dropped}
