"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the always-available accounting surface of the
observability subsystem (:mod:`repro.obs`).  Instrumented call sites never
branch on a level flag themselves — they hold a reference to either a live
:class:`MetricsRegistry` or the process-global :data:`NULL_REGISTRY`, whose
instruments are shared no-op singletons.  A disabled call site therefore
costs one attribute lookup and one no-op call, and nothing allocates.

Snapshots are plain JSON-able dicts so worker processes can ship them back
to a sweep parent over a process pool (:mod:`repro.metrics.parallel`), where
:func:`merge_snapshots` folds them into a whole-sweep rollup.  Merging is
associative and commutative — counters and histogram buckets add, gauges
keep their maximum — so per-config and whole-sweep rollups agree regardless
of completion order (asserted by ``tests/obs/test_registry.py``).
"""

from __future__ import annotations

import bisect
import copy
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "merge_into",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds: a coarse log-ish ladder that
#: covers per-pass counts (blocked messages, regions, knot sizes) without
#: per-metric tuning
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000,
)


class Counter:
    """A monotonically-increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merges across processes by maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``buckets`` are strictly-increasing upper bounds; an observation lands
    in the first bucket whose bound is >= the value, or in the overflow
    bin past the last bound.  Fixed bounds make cross-process merging an
    element-wise sum.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Named instruments, created on first use.

    Names are free-form slash-separated paths (``"detector/region_hits"``);
    the convention groups instruments by the subsystem that owns them.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            self.counters[name] = c = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            self.gauges[name] = g = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = h = Histogram(bounds)
        return h

    def set_counters(self, values: dict[str, int], prefix: str = "") -> None:
        """Bulk-load externally-maintained counters (e.g. detector stats)."""
        for name, value in values.items():
            c = self.counter(prefix + name)
            c.value = int(value)

    def snapshot(self) -> dict:
        """A plain JSON-able copy of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self.histograms.items())
            },
        }


class NullRegistry(MetricsRegistry):
    """No-op registry handed out when ``obs_level=0``.

    Every accessor returns a shared no-op instrument, so instrumented code
    paths stay branch-free and allocation-free when observability is off.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._HISTOGRAM

    def set_counters(self, values: dict[str, int], prefix: str = "") -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the process-global no-op registry (see module docstring)
NULL_REGISTRY = NullRegistry()


def _merge_histogram(into: dict, frm: dict, name: str) -> None:
    if into["bounds"] != frm["bounds"]:
        raise ValueError(
            f"histogram {name!r} bucket bounds differ across snapshots: "
            f"{into['bounds']} vs {frm['bounds']}"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], frm["counts"])]
    into["total"] += frm["total"]
    into["count"] += frm["count"]


def merge_into(merged: Optional[dict], snap: Optional[dict]) -> Optional[dict]:
    """Fold one registry snapshot into an accumulator, incrementally.

    The one-step form of :func:`merge_snapshots`, used where snapshots
    arrive over time rather than as a finished collection (the campaign
    service merges each completed point's snapshot into its live rollup
    as results stream in).  Returns the updated accumulator; the input
    ``merged`` may be mutated.  ``None`` snapshots are identity.
    """
    if snap is None:
        return merged
    if merged is None:
        return copy.deepcopy(snap)
    for name, value in snap.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    for name, value in snap.get("gauges", {}).items():
        prev = merged["gauges"].get(name)
        merged["gauges"][name] = value if prev is None else max(prev, value)
    for name, hist in snap.get("histograms", {}).items():
        mine = merged["histograms"].get(name)
        if mine is None:
            merged["histograms"][name] = copy.deepcopy(hist)
        else:
            _merge_histogram(mine, hist, name)
    if "phases" in snap:
        phases = merged.setdefault("phases", {})
        for name, row in snap["phases"].items():
            mine = phases.get(name)
            if mine is None:
                phases[name] = dict(row)
            else:
                mine["total_s"] += row["total_s"]
                mine["calls"] += row["calls"]
    if "trace" in snap:
        tr = merged.setdefault("trace", {"events": 0, "dropped": 0})
        tr["events"] = tr.get("events", 0) + snap["trace"].get("events", 0)
        tr["dropped"] = tr.get("dropped", 0) + snap["trace"].get("dropped", 0)
    return merged


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> Optional[dict]:
    """Fold registry snapshots into one rollup (associative, commutative).

    Counters and histogram bins sum, gauges keep the maximum, and phase
    tables (the profiler's ``"phases"`` section, when present) sum both
    accumulated seconds and call counts.  ``None`` entries (points run with
    observability off) are skipped; all-``None`` input merges to ``None``.
    """
    merged: Optional[dict] = None
    for snap in snapshots:
        merged = merge_into(merged, snap)
    return merged
