"""Routing for the hierarchical topology-zoo classes: dragonfly, full mesh.

All four relations here keep the paper's "unrestricted VC use" discipline —
no dateline classes, no escape channels — so the knot characterization
applies unchanged:

* :class:`DragonflyMinimal` ("df-min") — classic hierarchical minimal
  routing (local to a gateway, one global hop, local to the destination).
  Hold-and-wait chains span the local/global boundary, so cycles — and
  deadlocks — can form; this is the dragonfly study subject.
* :class:`DragonflyValiant` ("df-val") — a Valiant-style non-minimal
  adapter: from the source group a message may take *any* global channel
  (routing via a random intermediate group, the randomness supplied by the
  allocator's adaptive choice), then routes minimally.  Spreads load off
  hot global channels at the cost of longer paths.
* :class:`FullMeshDirect` ("fm-direct") — single-hop direct routing.  A
  message holds at most one virtual channel and waits only on reception,
  which always drains, so no hold-and-wait cycle can close: provably
  deadlock free without any VC discipline.
* :class:`FullMeshMisroute` ("fm-2hop") — direct plus one optional
  intermediate hop.  Two-hop paths reintroduce hold-and-wait (a worm can
  hold its first-leg channel while waiting for its second leg), so cycles
  and knots return; this is the full-mesh study subject.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import Dragonfly, FullMesh, Topology
from repro.routing.base import RoutingFunction

__all__ = [
    "DragonflyMinimal",
    "DragonflyValiant",
    "FullMeshDirect",
    "FullMeshMisroute",
]


class DragonflyMinimal(RoutingFunction):
    """Hierarchical minimal routing on a dragonfly (local-global-local).

    At each hop:

    * in the destination group — the direct local channel to the
      destination router;
    * elsewhere, at a router with a global channel to the destination
      group — that global channel;
    * otherwise — the local channels to this group's gateway routers
      (those owning a global channel to the destination group).

    Every VC of each selected physical channel is a candidate
    (unrestricted VC use), so deadlock is possible.
    """

    name = "df-min"
    deadlock_free = False

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        super().validate(topology, pool)
        if not isinstance(topology, Dragonfly):
            raise RoutingError(f"{self.name} is defined for dragonfly topologies")

    def _minimal_links(self, dest: int, node: int, topology: Dragonfly):
        g = topology.group_of(node)
        gd = topology.group_of(dest)
        if g == gd:
            return [topology.link_between(node, dest)]
        direct = [
            link
            for link in topology.global_links(node)
            if topology.group_of(link.dst) == gd
        ]
        if direct:
            return direct
        out = []
        for link in topology.out_links(node):
            if link.dim != 0:
                continue
            gateway = link.dst
            if any(
                topology.group_of(gl.dst) == gd
                for gl in topology.global_links(gateway)
            ):
                out.append(link)
        if out:
            return out
        # No single-global path from this group (only possible with a
        # truncated groups count); fall back to graph-minimal hops.
        return topology.productive_links(node, dest)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, Dragonfly):
            raise RoutingError(f"{self.name} is defined for dragonfly topologies")
        out: list[VirtualChannel] = []
        for link in self._minimal_links(message.dest, node, topology):
            out.extend(pool.vcs_of_link(link))
        return self._require_progress(message, node, out)


class DragonflyValiant(DragonflyMinimal):
    """Valiant-style non-minimal dragonfly routing.

    While the header is still inside its *source* group (and the
    destination lies elsewhere), the message may leave through any global
    channel — routing via a random intermediate group, the choice made by
    the allocator among free candidates — or hop to any local peer to
    reach its globals; a message that has taken one local hop must then
    take a global channel.  Once outside the source group it routes
    minimally (:class:`DragonflyMinimal`), so paths are bounded and
    livelock free.
    """

    name = "df-val"
    deadlock_free = False

    def cache_key(self, message, node):
        # the spread phase depends on the source group
        return (node, message.dest, message.src)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, Dragonfly):
            raise RoutingError(f"{self.name} is defined for dragonfly topologies")
        g = topology.group_of(node)
        gd = topology.group_of(message.dest)
        gs = topology.group_of(message.src)
        if g != gs or gd == gs:
            return super().candidates(message, node, topology, pool)
        if node == message.src:
            links = list(topology.out_links(node))
        else:
            # one local hop taken inside the source group: leave now
            links = topology.global_links(node)
            if not links:  # truncated dragonfly: router without globals
                return super().candidates(message, node, topology, pool)
        out: list[VirtualChannel] = []
        for link in links:
            out.extend(pool.vcs_of_link(link))
        return self._require_progress(message, node, out)


class FullMeshDirect(RoutingFunction):
    """Direct (single-hop) routing on a full mesh; provably deadlock free.

    Every message uses only the dedicated channel from its source to its
    destination: it holds at most one virtual channel and waits only on
    that channel or on reception.  Reception always drains, so ownership
    chains have length one and no wait-for cycle can close — deadlock
    freedom without virtual-channel restrictions (cf. arXiv 2510.14730).
    """

    name = "fm-direct"
    deadlock_free = True

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        super().validate(topology, pool)
        if not isinstance(topology, FullMesh):
            raise RoutingError(f"{self.name} is defined for full-mesh topologies")

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, FullMesh):
            raise RoutingError(f"{self.name} is defined for full-mesh topologies")
        if node == message.dest:
            raise RoutingError(
                f"message {message.id} routed at its destination node {node}"
            )
        link = topology.link_between(node, message.dest)
        return self._require_progress(message, node, pool.vcs_of_link(link))


class FullMeshMisroute(FullMeshDirect):
    """Full-mesh routing with one optional intermediate hop ("2-hop").

    At the source the message may take the direct channel *or* misroute
    through any intermediate node; at an intermediate node only the direct
    channel to the destination remains.  The two-hop option restores
    hold-and-wait — a worm can occupy its first-leg channel while its
    header waits for the second leg — so wait-for cycles (and knots) can
    form again.  This is what adaptive misrouting costs on a topology
    whose minimal routing is deadlock free.
    """

    name = "fm-2hop"
    deadlock_free = False

    def cache_key(self, message, node):
        # the misroute option exists only at the source node
        return (node, message.dest, message.src)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, FullMesh):
            raise RoutingError(f"{self.name} is defined for full-mesh topologies")
        if node == message.dest:
            raise RoutingError(
                f"message {message.id} routed at its destination node {node}"
            )
        if node != message.src:
            link = topology.link_between(node, message.dest)
            return self._require_progress(message, node, pool.vcs_of_link(link))
        out: list[VirtualChannel] = []
        for link in topology.out_links(node):
            out.extend(pool.vcs_of_link(link))
        return self._require_progress(message, node, out)
