"""Batch candidate lookup tables for position-pure routing relations.

Every built-in relation (DOR, TFAR and friends) exposes a
:meth:`~repro.routing.base.RoutingRelation.cache_key` making its candidate
set a pure function of message position; the engine memoizes the candidate
*list* per key.  The vectorized engine additionally needs, per key:

* the candidate VC objects (for the serve loop),
* their global indices as a ready-made tuple (the wait-key registration
  and the incremental tracker's dashed arcs consume exactly this tuple, so
  neither rebuilds it per blocked attempt), and
* their link dimensions (the straight-through selection collapse).

:class:`CandidateTable` builds those entries lazily through the same
relation calls the scalar path makes — contents are identical by
construction — and can export the whole table as padded numpy index
matrices for offline analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.topology import Topology
    from repro.routing.base import RoutingRelation

__all__ = ["CandidateTable"]


class CandidateTable:
    """Lazily-built ``cache_key -> (candidates, indices, dims)`` table."""

    def __init__(
        self,
        routing: "RoutingRelation",
        topology: "Topology",
        pool: "ChannelPool",
    ) -> None:
        self.routing = routing
        self.topology = topology
        self.pool = pool
        #: per-VC link dimension, plain list for scalar hot-path reads
        self.vc_dim: list[int] = [vc.link.dim for vc in pool.vcs]
        self._table: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, message: "Message", node: int) -> Optional[tuple]:
        """``(candidates, index_tuple)`` for the message's position.

        Returns None when the relation declines memoization (``cache_key``
        None) — the caller falls back to a direct relation call, exactly
        like the scalar engine's ``route_candidates``.
        """
        key = self.routing.cache_key(message, node)
        if key is None:
            return None
        entry = self._table.get(key)
        if entry is None:
            cands = self.routing.candidates(
                message, node, self.topology, self.pool
            )
            entry = (cands, tuple(vc.index for vc in cands))
            self._table[key] = entry
        return entry

    def as_index_matrix(self) -> tuple[list, np.ndarray]:
        """The built table as ``(keys, padded index matrix)``.

        Row *i* lists the candidate VC indices of ``keys[i]``, right-padded
        with -1.  Offline analysis / observability export; the serve loop
        never touches it.
        """
        keys = list(self._table)
        width = max(
            (len(self._table[k][1]) for k in keys), default=0
        )
        mat = np.full((len(keys), width), -1, dtype=np.int32)
        for i, k in enumerate(keys):
            idxs = self._table[k][1]
            mat[i, : len(idxs)] = idxs
        return keys, mat
