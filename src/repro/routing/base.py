"""Routing-function interface.

A routing function is a relation ``R(node, message) -> set of output VCs``:
given the router at which a message's header currently resides, it supplies
every virtual channel the message is *permitted* to acquire next.  The
candidate set defines both behaviour (the allocator picks a free candidate)
and the channel wait-for graph (a blocked header waits on exactly its
candidates), so the same object drives the simulation and the deadlock
detector.

The paper's two subject algorithms — dimension-order routing (DOR) and
minimal true fully adaptive routing (TFAR) — place **no restrictions** on
VC use, so deadlock is possible and recovery is required.  The avoidance
baselines (dateline, Duato, turn model) restrict VC use to provably avoid
deadlock and are used to validate the detector and to compare approaches.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import Topology

__all__ = ["RoutingFunction"]


class RoutingFunction:
    """Base class for routing relations.

    Subclasses implement :meth:`candidates`.  A routing function must be
    *connected*: for every (node, destination) pair with remaining distance,
    it supplies at least one candidate VC.  Connectivity is what makes the
    knot criterion exact (Warnakulasuriya & Pinkston, TR CENG 97-05).
    """

    #: short name used in reports and experiment labels
    name: str = "base"
    #: True when the algorithm provably avoids deadlock (used by tests)
    deadlock_free: bool = False
    #: minimum virtual channels per physical channel the algorithm requires
    min_vcs: int = 1

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        """All VCs the message may legally acquire at ``node``.

        The list includes busy VCs — the caller filters for free ones when
        allocating, and uses the busy ones as wait-for arcs when blocked.
        """
        raise NotImplementedError

    def cache_key(self, message: Message, node: int):
        """Hashable key under which :meth:`candidates` may be memoized.

        Candidate sets are pure functions of the message's position and
        destination for most relations, so the engine caches them (a
        blocked header re-requests the same set every cycle).  Relations
        whose candidates depend on more state override this; returning
        ``None`` disables caching.
        """
        return (node, message.dest)

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        """Reject configurations the algorithm is not defined for."""
        if pool.num_vcs < self.min_vcs:
            raise RoutingError(
                f"{self.name} requires >= {self.min_vcs} virtual channels, "
                f"got {pool.num_vcs}"
            )

    # -- helpers shared by subclasses ------------------------------------------
    @staticmethod
    def _require_progress(
        message: Message, node: int, out: list[VirtualChannel]
    ) -> list[VirtualChannel]:
        if not out:
            raise RoutingError(
                f"routing produced no candidates for message {message.id} "
                f"at node {node} toward {message.dest} (disconnected relation)"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
