"""Duato-protocol adaptive routing: avoidance with escape channels.

Duato's theory (the paper's reference [3]/[7]) permits cyclic dependencies
among *adaptive* channels as long as an acyclic *escape* sub-network remains
reachable from every blocked state.  Here the escape sub-network is dateline
dimension-order routing pinned to VC classes {0, 1} (class 0 before the
dateline, class 1 after), and classes {2..V-1} are fully adaptive on any
minimal physical channel.  On a torus this needs >= 3 VCs; on a mesh the
escape is plain DOR on class 0 and >= 2 VCs suffice.

Escape VCs are reserved: adaptive traffic never occupies them, preserving
the acyclicity of the escape dependency graph.  This is the canonical
cyclic-non-deadlock generator: its CWGs routinely contain cycles (Figure 4
of the paper) yet never a knot, because the escape VC is always an outgoing
arc leaving the would-be knot.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import KAryNCube, Mesh, Topology
from repro.routing.base import RoutingFunction
from repro.routing.dateline import DatelineDOR
from repro.routing.dor import DimensionOrderRouting

__all__ = ["DuatoProtocolRouting"]


class DuatoProtocolRouting(RoutingFunction):
    """Fully adaptive routing over adaptive VCs plus a dateline-DOR escape."""

    name = "Duato"
    deadlock_free = True
    min_vcs = 3

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        if not isinstance(topology, KAryNCube):
            raise RoutingError("Duato protocol is defined for k-ary n-cubes")
        required = 2 if isinstance(topology, Mesh) else 3
        if pool.num_vcs < required:
            raise RoutingError(
                f"{self.name} requires >= {required} virtual channels on this "
                f"topology, got {pool.num_vcs}"
            )

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, KAryNCube):
            raise RoutingError("Duato protocol is defined for k-ary n-cubes")
        adaptive_start = 1 if isinstance(topology, Mesh) else 2
        out: list[VirtualChannel] = []
        for link in topology.productive_links(node, message.dest):
            out.extend(pool.vcs_of_link(link)[adaptive_start:])
        out.append(self._escape_vc(message, node, topology, pool))
        return self._require_progress(message, node, out)

    def cache_key(self, message, node):
        return (node, message.dest, message.src)

    @staticmethod
    def _escape_vc(
        message: Message, node: int, topology: KAryNCube, pool: ChannelPool
    ) -> VirtualChannel:
        """The single escape VC: dateline-DOR on classes {0, 1}."""
        link = DimensionOrderRouting._next_link(
            DimensionOrderRouting(), message, node, topology
        )
        if isinstance(topology, Mesh):
            cls = 0  # mesh DOR is acyclic on its own
        else:
            cls = (
                1
                if DatelineDOR._crossed_dateline(message, node, link, topology)
                else 0
            )
        return pool.vcs_of_link(link)[cls]
