"""Routing algorithms and channel-selection policies.

Subjects of the paper's study (deadlock possible, recovery required):

* :class:`DimensionOrderRouting` — static DOR, unrestricted VC use.
* :class:`TrueFullyAdaptiveRouting` — minimal TFAR, unrestricted VC use.
* :class:`MisroutingTFAR` — non-minimal extension (future-work section).

Avoidance-based baselines (provably deadlock-free):

* :class:`DatelineDOR` — Dally/Seitz dateline VC classes on tori.
* :class:`DuatoProtocolRouting` — adaptive with escape channels.
* :class:`NegativeFirstRouting` — Glass/Ni turn model on meshes.

Topology-zoo relations (see docs/TOPOLOGIES.md):

* :class:`DragonflyMinimal` / :class:`DragonflyValiant` — hierarchical
  minimal and Valiant-style non-minimal dragonfly routing (deadlock
  possible in both).
* :class:`FullMeshDirect` — single-hop direct routing, deadlock-free
  without VC restrictions.
* :class:`FullMeshMisroute` — one optional intermediate hop; misrouting
  reintroduces hold-and-wait cycles.
"""

from repro.routing.analysis import (
    DeadlockFreedomReport,
    certify_deadlock_free,
    channel_dependency_graph,
    is_acyclic,
)
from repro.routing.base import RoutingFunction
from repro.routing.dateline import DatelineDOR
from repro.routing.dor import DimensionOrderRouting
from repro.routing.duato import DuatoProtocolRouting
from repro.routing.selection import (
    LowestIndexFirst,
    RandomSelection,
    SelectionPolicy,
    StraightThroughFirst,
    make_selection,
)
from repro.routing.hierarchical import (
    DragonflyMinimal,
    DragonflyValiant,
    FullMeshDirect,
    FullMeshMisroute,
)
from repro.routing.tfar import MisroutingTFAR, TrueFullyAdaptiveRouting
from repro.routing.turnmodel import NegativeFirstRouting

__all__ = [
    "RoutingFunction",
    "DeadlockFreedomReport",
    "certify_deadlock_free",
    "channel_dependency_graph",
    "is_acyclic",
    "DimensionOrderRouting",
    "TrueFullyAdaptiveRouting",
    "MisroutingTFAR",
    "DatelineDOR",
    "DuatoProtocolRouting",
    "NegativeFirstRouting",
    "DragonflyMinimal",
    "DragonflyValiant",
    "FullMeshDirect",
    "FullMeshMisroute",
    "SelectionPolicy",
    "StraightThroughFirst",
    "RandomSelection",
    "LowestIndexFirst",
    "make_selection",
    "make_routing",
]

_ROUTERS = {
    "dor": DimensionOrderRouting,
    "tfar": TrueFullyAdaptiveRouting,
    "tfar-mis": MisroutingTFAR,
    "dor-dateline": DatelineDOR,
    "duato": DuatoProtocolRouting,
    "negative-first": NegativeFirstRouting,
    "df-min": DragonflyMinimal,
    "df-val": DragonflyValiant,
    "fm-direct": FullMeshDirect,
    "fm-2hop": FullMeshMisroute,
}


def make_routing(name: str) -> RoutingFunction:
    """Instantiate a routing function by its short name (case-insensitive)."""
    try:
        return _ROUTERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown routing algorithm {name!r}; choose from {sorted(_ROUTERS)}"
        ) from None
