"""Channel-selection policies.

The routing function supplies a *set* of legal output VCs; the selection
policy picks one among those currently free.  The paper's default "favors
continuing routing in the current dimension over turning"
(:class:`StraightThroughFirst`).  Alternatives are provided for ablation.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.network.channels import VirtualChannel
from repro.network.message import Message

__all__ = [
    "SelectionPolicy",
    "StraightThroughFirst",
    "RandomSelection",
    "LowestIndexFirst",
    "make_selection",
]


class SelectionPolicy:
    """Chooses one free VC from a routing candidate list."""

    name = "base"

    def choose(
        self,
        message: Message,
        free: Sequence[VirtualChannel],
        rng: random.Random,
    ) -> Optional[VirtualChannel]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class StraightThroughFirst(SelectionPolicy):
    """Prefer a VC that continues in the message's current dimension.

    Among same-preference VCs, ties are broken uniformly at random so that
    physical channels are load-balanced.  Messages not yet in the network
    have no current dimension and fall back to a random choice.
    """

    name = "straight"

    def choose(
        self,
        message: Message,
        free: Sequence[VirtualChannel],
        rng: random.Random,
    ) -> Optional[VirtualChannel]:
        if not free:
            return None
        current_dim = message.vcs[-1].link.dim if message.vcs else None
        if current_dim is not None:
            straight = [vc for vc in free if vc.link.dim == current_dim]
            if straight:
                return rng.choice(straight)
        return rng.choice(list(free))


class RandomSelection(SelectionPolicy):
    """Uniformly random choice among free candidates."""

    name = "random"

    def choose(
        self,
        message: Message,
        free: Sequence[VirtualChannel],
        rng: random.Random,
    ) -> Optional[VirtualChannel]:
        return rng.choice(list(free)) if free else None


class LowestIndexFirst(SelectionPolicy):
    """Deterministic choice: lowest global VC index.  Useful in tests."""

    name = "lowest"

    def choose(
        self,
        message: Message,
        free: Sequence[VirtualChannel],
        rng: random.Random,
    ) -> Optional[VirtualChannel]:
        return min(free, key=lambda vc: vc.index) if free else None


_POLICIES = {
    cls.name: cls
    for cls in (StraightThroughFirst, RandomSelection, LowestIndexFirst)
}


def make_selection(name: str) -> SelectionPolicy:
    """Instantiate a selection policy by its short name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
