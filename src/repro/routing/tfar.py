"""Minimal true fully adaptive routing (TFAR), unrestricted VC use.

The paper's adaptive routing subject: at every hop a message may use *any*
virtual channel of *any* physical channel that lies on a minimal path to its
destination.  No escape channels or VC ordering is imposed ("true fully
adaptive"), so deadlock is possible; adaptivity is exhausted only when a
single productive dimension remains (e.g. near the destination), at which
point TFAR degenerates to the Figure 2 single-option situation.

A non-minimal variant with bounded misrouting is provided as
:class:`MisroutingTFAR` for the paper's future-work extension.
"""

from __future__ import annotations

from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import Topology
from repro.routing.base import RoutingFunction

__all__ = ["TrueFullyAdaptiveRouting", "MisroutingTFAR"]


class TrueFullyAdaptiveRouting(RoutingFunction):
    """Minimal fully adaptive routing over every VC of every productive link."""

    name = "TFAR"
    deadlock_free = False

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        out: list[VirtualChannel] = []
        for link in topology.productive_links(node, message.dest):
            out.extend(pool.vcs_of_link(link))
        return self._require_progress(message, node, out)


class MisroutingTFAR(TrueFullyAdaptiveRouting):
    """TFAR extended with bounded non-minimal routing (misrouting).

    When fewer than ``misroute_budget`` non-minimal hops have been taken,
    *every* outgoing link is a candidate, not just productive ones.  The
    budget is approximated statelessly: a message may misroute while its
    owned-VC chain is no more than ``min_distance(src, dest) +
    misroute_budget`` hops long.  Misrouting trades longer paths for fewer
    blocked headers — one of the knobs the paper lists for future study.
    """

    name = "TFAR-mis"

    def __init__(self, misroute_budget: int = 2) -> None:
        if misroute_budget < 0:
            raise ValueError("misroute_budget must be >= 0")
        self.misroute_budget = misroute_budget

    def cache_key(self, message, node):
        # the misroute budget depends on the source, hops taken and the
        # identity of the previous hop (U-turn filtering)
        prev = message.vcs[-1].index if message.vcs else -1
        return (node, message.dest, message.src, len(message.vcs), prev)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        minimal = topology.productive_links(node, message.dest)
        hops_taken = len(message.vcs)
        budget_left = (
            topology.min_distance(message.src, message.dest)
            + self.misroute_budget
            - hops_taken
            - topology.min_distance(node, message.dest)
        )
        if budget_left > 0:
            links = list(topology.out_links(node))
        else:
            links = minimal
        out: list[VirtualChannel] = []
        for link in links:
            out.extend(pool.vcs_of_link(link))
        # Never offer a channel straight back to where the header came from:
        # a 2-cycle with its own previous hop is wasteful and can livelock.
        if message.vcs:
            prev = message.vcs[-1].link
            filtered = [
                vc
                for vc in out
                if not (vc.link.dst == prev.src and vc.link.src == prev.dst)
            ]
            if filtered:  # keep connectivity if the U-turn is the only way back
                out = filtered
        return self._require_progress(message, node, out)
