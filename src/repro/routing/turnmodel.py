"""Turn-model routing (Glass & Ni): avoidance by forbidding turns.

The negative-first turn model for n-dimensional meshes: a message takes all
hops in negative directions before any hop in a positive direction.  Both
phases are fully adaptive within their permitted direction set, and the
scheme is deadlock-free with a **single** virtual channel — forbidding a
quarter of the turns breaks every abstract cycle.  The paper cites the turn
model [2] as a representative avoidance-based algorithm whose restrictions
the characterization study shows to be often overly conservative.

Defined for meshes only (wraparound links would reintroduce ring cycles).
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import Mesh, Topology
from repro.routing.base import RoutingFunction

__all__ = ["NegativeFirstRouting"]


class NegativeFirstRouting(RoutingFunction):
    """Negative-first turn-model routing for k-ary n-meshes."""

    name = "negative-first"
    deadlock_free = True
    min_vcs = 1

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        if not isinstance(topology, Mesh):
            raise RoutingError("the turn model is defined for meshes only")
        super().validate(topology, pool)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, Mesh):
            raise RoutingError("the turn model is defined for meshes only")
        productive = topology.productive_directions(node, message.dest)
        negative = [(d, s) for d, s in productive if s < 0]
        phase = negative if negative else productive
        out: list[VirtualChannel] = []
        for dim, direction in phase:
            link = topology.link_between(
                node, topology.neighbour(node, dim, direction)
            )
            out.extend(pool.vcs_of_link(link))
        return self._require_progress(message, node, out)
