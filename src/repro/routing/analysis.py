"""Static analysis of routing relations: channel dependency graphs.

The avoidance-theory counterpart of the CWG.  Where a CWG snapshots the
*dynamic* waits existing at one instant, the **channel dependency graph**
(CDG) of Dally & Seitz encodes every dependency a routing relation *could*
create: an arc ``u -> v`` whenever some message may hold VC ``u`` while
requesting VC ``v``.  A routing algorithm with an acyclic CDG is
deadlock-free; Duato's refinement only requires an acyclic *escape*
sub-relation.

These tools let users statically audit a routing function the way the
test-suite audits the built-in baselines:

* :func:`channel_dependency_graph` — build the CDG by enumerating every
  (source, destination) pair and following the relation;
* :func:`dependency_cycles` — the simple cycles of a CDG (bounded);
* :func:`is_acyclic` / :func:`certify_deadlock_free` — acyclicity check
  and a human-readable certification report.

For adaptive relations the CDG is built over *all* candidate continuations
at each reachable (node, destination) state, which is exact for the
minimal relations in this package (candidate sets depend only on the
current node, destination, and — for dateline classes — the source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cycles import CycleCount, count_simple_cycles
from repro.core.knots import strongly_connected_components
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import Topology
from repro.routing.base import RoutingFunction

__all__ = [
    "channel_dependency_graph",
    "dependency_cycles",
    "is_acyclic",
    "DeadlockFreedomReport",
    "certify_deadlock_free",
]


def channel_dependency_graph(
    routing: RoutingFunction,
    topology: Topology,
    pool: ChannelPool,
    *,
    max_hops: Optional[int] = None,
) -> dict[int, list[int]]:
    """The CDG induced by ``routing`` over every (src, dest) pair.

    Vertices are global VC indices; an arc ``u -> v`` is added whenever a
    message travelling src→dest may occupy ``u`` at some hop and ``v`` is a
    candidate for its next hop.  All candidate branches are explored
    (breadth-first over (node, held-VC) states), so adaptive relations are
    covered exactly.
    """
    if max_hops is None:
        max_hops = 4 * topology.num_nodes  # generous loop guard
    arcs: set[tuple[int, int]] = set()
    vertices: set[int] = set()
    for src in range(topology.num_nodes):
        for dest in range(topology.num_nodes):
            if src == dest:
                continue
            message = Message(0, src, dest, 2, 0)
            # state: (node, vc just acquired or None at injection)
            frontier: list[tuple[int, Optional[VirtualChannel]]] = [(src, None)]
            seen: set[tuple[int, Optional[int]]] = set()
            hops = 0
            while frontier and hops <= max_hops:
                hops += 1
                nxt: list[tuple[int, Optional[VirtualChannel]]] = []
                for node, held in frontier:
                    if node == dest:
                        continue
                    # The relation may consult the held chain (e.g. the
                    # misrouting variant); present a minimal facsimile.
                    message.vcs = [held] if held is not None else []
                    candidates = routing.candidates(message, node, topology, pool)
                    for vc in candidates:
                        vertices.add(vc.index)
                        if held is not None:
                            arcs.add((held.index, vc.index))
                        state = (vc.dst, vc.index)
                        if state not in seen:
                            seen.add(state)
                            nxt.append((vc.dst, vc))
                frontier = nxt
            message.vcs = []
    adj: dict[int, list[int]] = {v: [] for v in vertices}
    for u, v in sorted(arcs):
        adj[u].append(v)
    return adj


def dependency_cycles(
    adj: dict[int, list[int]], limit: int = 10_000
) -> CycleCount:
    """Number of simple cycles in a CDG (capped)."""
    return count_simple_cycles(adj, limit=limit)


def is_acyclic(adj: dict[int, list[int]]) -> bool:
    """True when the CDG contains no cycle (Dally/Seitz criterion)."""
    for comp in strongly_connected_components(adj):
        if len(comp) > 1:
            return False
        (v,) = comp
        if v in adj.get(v, ()):
            return False
    return True


@dataclass(frozen=True)
class DeadlockFreedomReport:
    """Outcome of a static deadlock-freedom certification."""

    routing_name: str
    vertices: int
    arcs: int
    acyclic: bool
    cycle_count: int
    cycle_count_saturated: bool
    #: one example dependency cycle, if any (VC indices)
    example_cycle: Optional[tuple[int, ...]]

    @property
    def certified(self) -> bool:
        """Acyclicity is sufficient (not necessary) for deadlock freedom."""
        return self.acyclic

    def summary(self) -> str:
        if self.acyclic:
            return (
                f"{self.routing_name}: CDG acyclic over {self.vertices} VCs / "
                f"{self.arcs} dependencies -> deadlock-free (Dally-Seitz)"
            )
        more = "+" if self.cycle_count_saturated else ""
        return (
            f"{self.routing_name}: CDG has {self.cycle_count}{more} dependency "
            f"cycles (e.g. {self.example_cycle}) -> deadlock possible unless "
            "an escape sub-relation exists (Duato)"
        )


def certify_deadlock_free(
    routing: RoutingFunction,
    topology: Topology,
    pool: ChannelPool,
    *,
    cycle_limit: int = 10_000,
) -> DeadlockFreedomReport:
    """Build the CDG and report acyclicity plus cycle statistics."""
    adj = channel_dependency_graph(routing, topology, pool)
    acyclic = is_acyclic(adj)
    example: Optional[tuple[int, ...]] = None
    count = CycleCount(0, False)
    if not acyclic:
        from repro.core.cycles import enumerate_simple_cycles

        cycles, saturated = enumerate_simple_cycles(adj, limit=cycle_limit)
        count = CycleCount(len(cycles), saturated)
        example = tuple(cycles[0]) if cycles else None
    return DeadlockFreedomReport(
        routing_name=routing.name,
        vertices=len(adj),
        arcs=sum(len(v) for v in adj.values()),
        acyclic=acyclic,
        cycle_count=count.count,
        cycle_count_saturated=count.saturated,
        example_cycle=example,
    )
