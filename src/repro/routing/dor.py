"""Dimension-order routing (DOR) with unrestricted virtual-channel use.

The paper's static routing subject: each message corrects its address one
dimension at a time, lowest dimension first, always taking a minimal
direction.  All VCs of the selected physical channel may be used without
restriction, so in a torus DOR **can deadlock** (the classic ring cycle of
Figure 1); the paper measures exactly how often.

Direction choice within a dimension is fixed per (source, destination): the
shorter way around the ring, breaking the even-radix tie toward ``+``.  A
static choice is required for DOR to be truly non-adaptive.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import KAryNCube, Topology
from repro.routing.base import RoutingFunction

__all__ = ["DimensionOrderRouting"]


class DimensionOrderRouting(RoutingFunction):
    """Static dimension-order routing for k-ary n-cubes and meshes."""

    name = "DOR"
    deadlock_free = False

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, KAryNCube):
            raise RoutingError("DOR is defined for k-ary n-cube topologies")
        link = self._next_link(message, node, topology)
        return self._require_progress(message, node, pool.vcs_of_link(link))

    def _next_link(self, message: Message, node: int, topology: KAryNCube):
        productive = topology.productive_directions(node, message.dest)
        if not productive:
            raise RoutingError(
                f"message {message.id} routed at its destination node {node}"
            )
        lowest = min(dim for dim, _ in productive)
        # An even-radix torus offers both directions when the offset is
        # exactly k/2; a static algorithm must pick one, so prefer ``+``.
        direction = max(d for dim, d in productive if dim == lowest)
        return topology.link_between(
            node, topology.neighbour(node, lowest, direction)
        )
