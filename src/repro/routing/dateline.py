"""Dateline dimension-order routing: the classic deadlock-*avoidance* baseline.

Dally & Seitz's scheme for tori: each unidirectional ring is split into two
virtual-channel classes with a *dateline* at the wraparound link.  A message
travels on low-class VCs until it crosses the dateline in the dimension it is
currently correcting, then switches to high-class VCs.  The resulting channel
dependency graph is acyclic, so this router is provably deadlock-free — the
detector must never report a knot for it (a key validation test), and it
serves as the avoidance side of the recovery-vs-avoidance comparison the
paper motivates.

Requires at least 2 VCs per physical channel on a torus.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message
from repro.network.topology import KAryNCube, Mesh, Topology
from repro.routing.dor import DimensionOrderRouting

__all__ = ["DatelineDOR"]


class DatelineDOR(DimensionOrderRouting):
    """Dimension-order routing restricted by dateline VC classes."""

    name = "DOR-dateline"
    deadlock_free = True
    min_vcs = 2

    def validate(self, topology: Topology, pool: ChannelPool) -> None:
        if isinstance(topology, Mesh):
            # A mesh has no wraparound, so plain DOR is already acyclic and
            # one VC suffices; we keep the class split harmlessly unused.
            return
        super().validate(topology, pool)

    def candidates(
        self,
        message: Message,
        node: int,
        topology: Topology,
        pool: ChannelPool,
    ) -> list[VirtualChannel]:
        if not isinstance(topology, KAryNCube):
            raise RoutingError("dateline DOR is defined for k-ary n-cubes")
        link = self._next_link(message, node, topology)
        vcs = pool.vcs_of_link(link)
        if isinstance(topology, Mesh):
            return self._require_progress(message, node, vcs)
        high = self._crossed_dateline(message, node, link, topology)
        split = max(1, pool.num_vcs // 2)
        chosen = vcs[split:] if high else vcs[:split]
        return self._require_progress(message, node, chosen)

    def cache_key(self, message, node):
        # dateline classes depend on where the message entered the ring
        return (node, message.dest, message.src)

    @staticmethod
    def _crossed_dateline(
        message: Message, node: int, link, topology: KAryNCube
    ) -> bool:
        """Has (or will, with this hop) the message crossed the dateline?

        The dateline of each ring sits on its wraparound link: coordinate
        ``k-1 -> 0`` in the ``+`` direction, ``0 -> k-1`` in ``-``.  Because
        DOR corrects dimensions in order and travels minimally, a message's
        position within the current dimension always lies between its source
        and destination coordinates along the travel direction, so crossing
        can be decided from coordinates alone — no per-message state.
        """
        dim = link.dim
        cur = topology.coords(node)[dim]
        src = topology.coords(message.src)[dim]
        k = topology.dims[dim]
        if link.direction == +1:
            if cur == k - 1:  # this hop *is* the wraparound
                return True
            return cur < src
        if cur == 0:
            return True
        return cur > src
