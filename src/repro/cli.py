"""Command-line interface.

Four subcommands::

    python -m repro simulate --k 8 --n 2 --routing dor --vcs 1 --load 0.8
    python -m repro simulate --topology dragonfly --dims 4,2,2 --routing df-min
    python -m repro experiment FIG5 --scale bench [--csv out.csv] [--chart]
    python -m repro campaign run FIG5 --store runs/fig5 --scale bench
    python -m repro oracle check [CASE ...] [--witness-dir DIR]

``simulate`` runs one configuration — any topology in the zoo
(``--topology torus|mesh3d|torus3d|dragonfly|fullmesh``, see
docs/TOPOLOGIES.md) — and prints the run summary plus the deadlock
characterization.  ``experiment`` regenerates one of the paper's
figures/tables (FIG5, FIG6, FIG7, FIG8, SEC3.5, SEC3.6, TAB-AVOID,
ABL-DET, ... or the cross-topology TOPO-CMP study, alias
``topology-comparison``) and prints the paper-style tables, optionally
with CSV export and ASCII charts; with ``--store`` the sweeps run as a
checkpointed campaign.
``campaign`` manages durable sweep campaigns (:mod:`repro.campaign`):
``run`` executes an experiment against a result store with per-point
retry/timeout fault tolerance, ``resume`` is the same invocation spelled
to make intent explicit (completed points are always skipped), ``status``
renders the store manifest, ``clean`` drops failed entries (or, with
``--all``, the whole store) so they run again.  The distributed tier
(:mod:`repro.campaign.service`): ``serve`` runs an experiment as a
campaign *service* — an asyncio lease scheduler that local fork slots and
remote machines drain cooperatively — ``worker --connect HOST:PORT``
attaches a network worker to one, ``watch --connect HOST:PORT`` streams
its live status, and ``rebuild`` reconstructs a store manifest from the
on-disk artifacts and journal after corruption or loss.
``oracle`` drives the exhaustive model checker
(:mod:`repro.validation.oracle`): ``list`` prints the verified
configuration classes, ``check`` enumerates each class to closure and
cross-checks the knot detector at every reachable state, ``witness``
writes the shortest replayable path into a true deadlock, ``replay``
re-runs a witness artifact, and ``teeth`` proves armed bookkeeping faults
are caught with concrete counterexamples.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SimulationConfig

__all__ = ["main", "build_parser"]

#: experiment registry ids accepted by ``experiment`` and ``campaign run``
EXPERIMENT_IDS = [
    "FIG5", "FIG6", "FIG7", "FIG8", "SEC3.5", "SEC3.6",
    "TAB-AVOID", "ABL-DET", "ABL-REC", "ABL-SEL", "ABL-INT",
    "ABL-TIMEOUT", "EXT-LEN", "EXT-GRAN", "EXT-FAULT", "ABL-ARB",
    "TOPO-CMP", "topology-comparison", "all",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Characterization of deadlocks in interconnection networks "
            "(Warnakulasuriya & Pinkston, IPPS 1997) — flit-level simulator "
            "with true CWG-knot deadlock detection"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--topology", default="torus",
                     choices=["torus", "mesh3d", "torus3d", "dragonfly",
                              "fullmesh"],
                     help="topology class (default torus: k-ary n-cube)")
    sim.add_argument("--k", type=int, default=8, help="radix (default 8)")
    sim.add_argument("--n", type=int, default=2, help="dimensions (default 2)")
    sim.add_argument("--dims", type=_parse_int_tuple, default=(),
                     metavar="A,B,...",
                     help="topology shape: per-dimension radices for "
                          "mesh3d/torus3d (e.g. 4,4,4), 'a,p,h' for "
                          "dragonfly, 'N' for fullmesh")
    sim.add_argument("--link-latencies", type=_parse_int_tuple, default=(),
                     metavar="L,L,...",
                     help="per-dimension link latency in cycles (e.g. "
                          "1,1,4 for a slow TSV dimension; dragonfly "
                          "takes 'local,global', fullmesh one value)")
    sim.add_argument("--unidirectional", action="store_true")
    sim.add_argument("--mesh", action="store_true")
    sim.add_argument(
        "--routing",
        default="dor",
        choices=["dor", "tfar", "tfar-mis", "dor-dateline", "duato",
                 "negative-first", "df-min", "df-val", "fm-direct",
                 "fm-2hop"],
    )
    sim.add_argument("--vcs", type=int, default=1, help="virtual channels")
    sim.add_argument("--buffer", type=int, default=2, help="buffer depth (flits)")
    sim.add_argument("--length", type=int, default=16, help="message length")
    sim.add_argument("--traffic", default="uniform")
    sim.add_argument("--load", type=float, default=0.5, help="normalized load")
    sim.add_argument("--recovery", default="disha",
                     choices=["disha", "abort-all", "none"])
    sim.add_argument("--warmup", type=int, default=500)
    sim.add_argument("--cycles", type=int, default=3000, help="measured cycles")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--progress", type=int, default=0,
                     help="print progress every N cycles")
    sim.add_argument("--obs-level", type=int, default=0, choices=[0, 1, 2],
                     help="observability: 0 off, 1 metrics+profiler, "
                          "2 adds cycle-level tracing (default 0)")
    sim.add_argument("--trace-out", metavar="PATH",
                     help="write the cycle-level trace (implies --obs-level 2);"
                          " '.jsonl' suffix selects JSONL, anything else "
                          "Chrome-trace JSON for chrome://tracing / Perfetto")
    sim.add_argument("--trace-capacity", type=int, default=65_536,
                     help="trace ring-buffer bound in events (default 65536)")

    exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    exp.add_argument("id", choices=EXPERIMENT_IDS)
    exp.add_argument("--scale", default="bench",
                     choices=["tiny", "bench", "paper"])
    exp.add_argument("--csv", metavar="PATH", help="also write CSV rows")
    exp.add_argument("--chart", action="store_true",
                     help="render ASCII charts of the figure series")
    exp.add_argument("--obs-level", type=int, default=0, choices=[0, 1, 2],
                     help="collect observability metrics in every sweep "
                          "point and print per-series rollups (default 0)")
    _add_campaign_run_args(exp, store_required=False)

    camp = sub.add_parser(
        "campaign", help="checkpointed, resumable experiment campaigns"
    )
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)
    for verb, blurb in (
        ("run", "run an experiment as a durable campaign"),
        ("resume", "re-invoke a campaign: completed points are skipped"),
    ):
        crun = camp_sub.add_parser(verb, help=blurb)
        crun.add_argument("id", choices=EXPERIMENT_IDS)
        crun.add_argument("--scale", default="bench",
                          choices=["tiny", "bench", "paper"])
        crun.add_argument("--csv", metavar="PATH", help="also write CSV rows")
        crun.add_argument("--chart", action="store_true",
                          help="render ASCII charts of the figure series")
        crun.add_argument("--obs-level", type=int, default=0,
                          choices=[0, 1, 2],
                          help="collect observability metrics per point")
        _add_campaign_run_args(crun, store_required=True)
    cstatus = camp_sub.add_parser(
        "status", help="render a store's manifest (done/failed/counters)"
    )
    cstatus.add_argument("--store", required=True, metavar="DIR")
    cclean = camp_sub.add_parser(
        "clean", help="drop failed manifest entries so they run again"
    )
    cclean.add_argument("--store", required=True, metavar="DIR")
    cclean.add_argument("--all", action="store_true",
                        help="remove every artifact and the manifest")
    cserve = camp_sub.add_parser(
        "serve",
        help="run an experiment as a distributed campaign service "
             "(remote workers attach with `campaign worker --connect`)",
    )
    cserve.add_argument("id", choices=EXPERIMENT_IDS)
    cserve.add_argument("--scale", default="bench",
                        choices=["tiny", "bench", "paper"])
    cserve.add_argument("--csv", metavar="PATH", help="also write CSV rows")
    cserve.add_argument("--chart", action="store_true",
                        help="render ASCII charts of the figure series")
    cserve.add_argument("--obs-level", type=int, default=0, choices=[0, 1, 2],
                        help="collect observability metrics per point")
    cserve.add_argument("--store", required=True, metavar="DIR")
    cserve.add_argument("--host", default="127.0.0.1",
                        help="bind address for both endpoints (default "
                             "127.0.0.1; use 0.0.0.0 for remote workers)")
    cserve.add_argument("--port", type=int, default=0,
                        help="worker-protocol TCP port (default: ephemeral)")
    cserve.add_argument("--status-port", type=int, default=None, metavar="PORT",
                        help="serve live JSON/SSE status here "
                             "(0 = ephemeral; omitted = no status endpoint)")
    cserve.add_argument("--local-workers", type=int, default=0,
                        help="in-process fork-executor slots (default 0: "
                             "remote workers do all the work)")
    cserve.add_argument("--lease-ttl", type=float, default=15.0,
                        help="seconds a lease survives without a heartbeat "
                             "before its point is requeued (default 15)")
    cserve.add_argument("--requeue-limit", type=int, default=3,
                        help="lease grants per point before it degrades to "
                             "a terminal lease-expired failure (default 3)")
    cserve.add_argument("--retries", type=int, default=2,
                        help="per-point re-attempts inside each worker")
    cserve.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-point wall-clock budget inside each worker")
    cworker = camp_sub.add_parser(
        "worker", help="attach a network worker to a campaign service"
    )
    cworker.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="the service's worker-protocol endpoint")
    cworker.add_argument("--id", dest="worker_id", default=None,
                         help="worker identity shown in status "
                              "(default: hostname/pid)")
    cworker.add_argument("--retries", type=int, default=2,
                         help="re-attempts per failed point (default 2)")
    cworker.add_argument("--timeout", type=float, default=None, metavar="SECS",
                         help="per-point wall-clock budget")
    cworker.add_argument("--max-points", type=int, default=None,
                         help="exit after executing N points")
    cworker.add_argument("--stay", action="store_true",
                         help="keep polling after the campaign drains "
                              "instead of exiting on `done`")
    cwatch = camp_sub.add_parser(
        "watch", help="stream a campaign service's live status"
    )
    cwatch.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the service's *status* endpoint")
    cwatch.add_argument("--interval", type=float, default=1.0,
                        help="seconds between status polls (default 1)")
    cwatch.add_argument("--max-updates", type=int, default=None,
                        help="stop after N polls (default: until drained)")
    crebuild = camp_sub.add_parser(
        "rebuild",
        help="reconstruct the manifest from on-disk artifacts + journal",
    )
    crebuild.add_argument("--store", required=True, metavar="DIR")

    orc = sub.add_parser(
        "oracle", help="exhaustive model-checking oracle for the detector"
    )
    orc_sub = orc.add_subparsers(dest="oracle_command", required=True)
    orc_sub.add_parser("list", help="print the verified configuration classes")
    ocheck = orc_sub.add_parser(
        "check", help="enumerate cases to closure and cross-check the detector"
    )
    ocheck.add_argument("cases", nargs="*", metavar="CASE",
                        help="case names (default: the whole grid)")
    ocheck.add_argument("--witness-dir", metavar="DIR",
                        help="write a replayable witness per violation here")
    owit = orc_sub.add_parser(
        "witness", help="write the shortest path into a case's true deadlock"
    )
    owit.add_argument("case", metavar="CASE")
    owit.add_argument("--out", required=True, metavar="PATH")
    orep = orc_sub.add_parser("replay", help="re-run a witness artifact")
    orep.add_argument("artifact", metavar="PATH")
    orep.add_argument("--production", action="store_true",
                      help="replay on the fast-path engine with incremental "
                           "CWG maintenance and detector caching")
    oteeth = orc_sub.add_parser(
        "teeth", help="prove armed faults are caught with counterexamples"
    )
    oteeth.add_argument("case", nargs="?", default="ring-deadlock",
                        metavar="CASE")
    oteeth.add_argument("--witness-dir", metavar="DIR",
                        help="write each fault's catching witness here")
    return parser


def _parse_int_tuple(value: str) -> tuple[int, ...]:
    """argparse type for comma-separated positive-int tuples like '4,4,2'."""
    try:
        return tuple(int(part) for part in value.split(",") if part != "")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}"
        ) from None


def _add_campaign_run_args(
    parser: argparse.ArgumentParser, *, store_required: bool
) -> None:
    """The campaign-execution knobs shared by `experiment` and `campaign`."""
    parser.add_argument(
        "--store", required=store_required, metavar="DIR",
        help="result-store directory; completed points are checkpointed "
             "there and skipped on re-invocation"
        + ("" if store_required else " (omitting it runs plain sweeps)"),
    )
    parser.add_argument("--retries", type=int, default=2,
                        help="re-attempts per failed point (default 2)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-point wall-clock budget; a worker past it "
                             "is killed and the attempt retried")
    parser.add_argument("--workers", type=int, default=None,
                        help="concurrent worker processes (default: cores-1)")
    parser.add_argument("--max-points", type=int, default=None,
                        help="stop after N fresh point executions "
                             "(interruption hook used by tests/CI)")


def _run_simulate(args: argparse.Namespace) -> int:
    from repro.network.simulator import NetworkSimulator

    obs_level = args.obs_level
    if args.trace_out and obs_level < 2:
        obs_level = 2  # tracing needs the level-2 ring buffer
    config = SimulationConfig(
        topology=args.topology,
        dims=args.dims,
        link_latencies=args.link_latencies,
        k=args.k,
        n=args.n,
        bidirectional=not args.unidirectional,
        mesh=args.mesh,
        routing=args.routing,
        num_vcs=args.vcs,
        buffer_depth=args.buffer,
        message_length=args.length,
        traffic=args.traffic,
        load=args.load,
        recovery=args.recovery,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        obs_level=obs_level,
        obs_trace_capacity=args.trace_capacity,
    )
    sim = NetworkSimulator(config)
    print(f"simulating {config.label()} ...")
    result = sim.run(progress_every=args.progress)
    cap = sim.topology.capacity_flits_per_node_cycle
    print(result.summary())
    print(f"throughput (normalized): {result.normalized_throughput(cap):.3f}")
    print(
        f"deadlocks: {result.deadlocks} "
        f"({result.single_cycle_deadlocks} single-cycle, "
        f"{result.multi_cycle_deadlocks} multi-cycle)"
    )
    if result.deadlocks:
        print(
            f"avg deadlock set {result.avg_deadlock_set_size:.1f} msgs, "
            f"avg resource set {result.avg_resource_set_size:.1f} VCs, "
            f"avg knot density {result.avg_knot_cycle_density:.1f}"
        )
    if sim.obs.enabled:
        print()
        print(sim.obs.phase_table())
    if args.trace_out:
        tracer = sim.obs.tracer
        if args.trace_out.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out)
        else:
            tracer.write_chrome(args.trace_out)
        stats = tracer.stats()
        print(
            f"trace written to {args.trace_out} "
            f"({stats['events']} events, {stats['dropped']} dropped)"
        )
    return 0


def _campaign_runner_from_args(args: argparse.Namespace):
    """Build the CampaignRunner an invocation asked for (None without --store)."""
    if not getattr(args, "store", None):
        return None
    from repro.campaign import CampaignRunner, ResultStore

    return CampaignRunner(
        ResultStore(args.store),
        retries=args.retries,
        timeout_s=args.timeout,
        max_workers=args.workers,
        max_points=args.max_points,
    )


def _print_campaign_summary(runner) -> None:
    counters = runner.registry.snapshot()["counters"]
    parts = [
        f"{name.split('/', 1)[1]}={value}"
        for name, value in sorted(counters.items())
        if name.startswith("campaign/")
    ]
    print(f"campaign [{runner.store.root}]: " + ", ".join(parts))
    failures = counters.get("campaign/failures", 0)
    if failures:
        print(
            f"WARNING: {failures} point(s) degraded to recorded failures — "
            f"see `repro campaign status --store {runner.store.root}`"
        )


def _run_experiment(args: argparse.Namespace, runner=None) -> int:
    from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_ALIASES
    from repro.experiments.base import set_campaign_runner, set_default_obs_level
    from repro.experiments.report import (
        render_figure,
        render_obs_rollup,
        render_topology_comparison,
        sweep_csv,
    )

    set_default_obs_level(args.obs_level)
    if runner is None:
        runner = _campaign_runner_from_args(args)
    set_campaign_runner(runner)
    try:
        exp_id = EXPERIMENT_ALIASES.get(args.id, args.id)
        wanted = list(ALL_EXPERIMENTS) if exp_id == "all" else [exp_id]
        csv_parts = []
        for exp_id in wanted:
            result = ALL_EXPERIMENTS[exp_id](scale=args.scale)
            print(result.format_tables())
            if exp_id == "TOPO-CMP":
                print()
                print(render_topology_comparison(result))
            if args.obs_level:
                rollup = render_obs_rollup(result)
                if rollup:
                    print()
                    print(rollup)
            if args.chart:
                print()
                print(render_figure(result, "norm_deadlocks"))
                print()
                print(render_figure(result, "throughput"))
            if args.csv:
                csv_parts.append(sweep_csv(result))
            print()
        if args.csv and csv_parts:
            header = csv_parts[0].splitlines()[0]
            body = [ln for part in csv_parts for ln in part.splitlines()[1:]]
            with open(args.csv, "w") as fh:
                fh.write("\n".join([header, *body]) + "\n")
            print(f"CSV written to {args.csv}")
        if runner is not None:
            _print_campaign_summary(runner)
    finally:
        set_campaign_runner(None)
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore
    from repro.experiments.report import render_campaign_status

    if args.campaign_command == "status":
        print(render_campaign_status(ResultStore(args.store)))
        return 0
    if args.campaign_command == "clean":
        summary = ResultStore(args.store).clean(all_points=args.all)
        print(
            f"cleaned {args.store}: {summary['failed_dropped']} failed "
            f"entr(ies) dropped, {summary['artifacts_dropped']} artifact(s) "
            f"removed"
        )
        return 0
    if args.campaign_command == "rebuild":
        manifest = ResultStore(args.store).manifest_rebuild()
        statuses: dict[str, int] = {}
        for entry in manifest["points"].values():
            statuses[entry["status"]] = statuses.get(entry["status"], 0) + 1
        corrupt = manifest["counters"].get("corrupt_artifacts", 0)
        print(
            f"rebuilt manifest for {args.store}: "
            f"{statuses.get('done', 0)} done, {statuses.get('failed', 0)} "
            f"failed point(s) recovered"
            + (f"; {corrupt} corrupt artifact(s) dropped" if corrupt else "")
        )
        return 0
    if args.campaign_command == "serve":
        return _run_campaign_serve(args)
    if args.campaign_command == "worker":
        return _run_campaign_worker(args)
    if args.campaign_command == "watch":
        return _run_campaign_watch(args)
    # run / resume: identical semantics — resume is run with a store that
    # already holds completed points
    return _run_experiment(args)


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--connect expects HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _run_campaign_serve(args: argparse.Namespace) -> int:
    from repro.campaign.service import CampaignService, ServiceRunner

    service = CampaignService(
        args.store,
        host=args.host,
        port=args.port,
        status_port=args.status_port,
        lease_ttl=args.lease_ttl,
        requeue_limit=args.requeue_limit,
        local_workers=args.local_workers,
        retries=args.retries,
        timeout_s=args.timeout,
    )
    with service:
        print(
            f"campaign service on {service.host}:{service.port} "
            f"(store {service.store.root}, {args.local_workers} local "
            f"slot(s); attach more with "
            f"`repro campaign worker --connect {service.host}:{service.port}`)"
        )
        if service.status_port is not None:
            print(
                f"live status on http://{service.host}:{service.status_port}"
                f"/status (SSE: /events; "
                f"`repro campaign watch --connect "
                f"{service.host}:{service.status_port}`)"
            )
        return _run_experiment(args, runner=ServiceRunner(service))


def _run_campaign_worker(args: argparse.Namespace) -> int:
    from repro.campaign.service import run_worker

    host, port = _parse_endpoint(args.connect)
    stats = run_worker(
        host,
        port,
        worker_id=args.worker_id,
        retries=args.retries,
        timeout_s=args.timeout,
        max_points=args.max_points,
        exit_when_done=not args.stay,
    )
    print(
        f"worker drained: {stats['points_done']} point(s) done, "
        f"{stats['points_failed']} failed, {stats['claims']} lease(s)"
    )
    return 0


def _run_campaign_watch(args: argparse.Namespace) -> int:
    from repro.campaign.service.status import watch

    host, port = _parse_endpoint(args.connect)
    failed = watch(
        host, port, interval_s=args.interval, max_updates=args.max_updates
    )
    return 1 if failed else 0


def _run_oracle(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.validation import oracle as orc

    if args.oracle_command == "list":
        for case in orc.ORACLE_GRID:
            dl = case.expected_deadlocked_terminals
            print(
                f"{case.name}: {case.description}\n"
                f"    {case.expected_states} states, "
                f"{case.expected_terminals} terminals "
                f"({dl} deadlocked)"
            )
        return 0
    if args.oracle_command == "check":
        names = args.cases or [c.name for c in orc.ORACLE_GRID]
        failed = False
        for name in names:
            case = orc.get_case(name)
            report = orc.check_case(case, log=print, keep_graph=True)
            for violation in report.violations:
                print(f"  {violation.kind} @ state {violation.state_index}: "
                      f"{violation.detail}")
                if args.witness_dir and violation.state_index >= 0:
                    payload = orc.build_witness(
                        report.graph, violation.state_index,
                        kind=violation.kind, detail=violation.detail,
                    )
                    path = orc.dump_witness(
                        payload,
                        Path(args.witness_dir)
                        / f"{name}-{violation.kind}-{violation.state_index}.json",
                    )
                    print(f"  witness written to {path}")
            failed = failed or not report.ok
        return 1 if failed else 0
    if args.oracle_command == "witness":
        payload = orc.make_deadlock_witness(orc.get_case(args.case))
        path = orc.dump_witness(payload, args.out)
        print(f"deadlock witness ({len(payload['steps'])} steps) "
              f"written to {path}")
        return 0
    if args.oracle_command == "replay":
        payload = orc.load_witness(args.artifact)
        result = orc.replay_witness(payload, production=args.production)
        engine = "production" if args.production else "oracle"
        if result.ok:
            print(f"replay OK on the {engine} engine: "
                  f"{len(payload['steps'])} steps reproduced, final state "
                  f"{result.final_digest}")
            return 0
        print(f"replay DIVERGED on the {engine} engine: {result.detail}")
        return 1
    # teeth
    case = orc.get_case(args.case)
    outcomes = orc.run_teeth(case)
    missed = False
    for out in outcomes:
        status = "caught" if out.caught else "MISSED"
        print(f"{out.fault}: {status}"
              + (f" by the {out.witness_kind!r} witness "
                 f"({out.divergence} divergence at step {out.diverged_at})"
                 if out.caught else ""))
        if out.caught and args.witness_dir:
            path = orc.dump_witness(
                out.witness, Path(args.witness_dir) / f"teeth-{out.fault}.json"
            )
            print(f"  witness written to {path}")
        missed = missed or not out.caught
    return 1 if missed else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "oracle":
        return _run_oracle(args)
    return _run_experiment(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
