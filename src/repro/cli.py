"""Command-line interface.

Two subcommands::

    python -m repro simulate --k 8 --n 2 --routing dor --vcs 1 --load 0.8
    python -m repro experiment FIG5 --scale bench [--csv out.csv] [--chart]

``simulate`` runs one configuration and prints the run summary plus the
deadlock characterization.  ``experiment`` regenerates one of the paper's
figures/tables (FIG5, FIG6, FIG7, FIG8, SEC3.5, SEC3.6, TAB-AVOID,
ABL-DET) and prints the paper-style tables, optionally with CSV export and
ASCII charts.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SimulationConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Characterization of deadlocks in interconnection networks "
            "(Warnakulasuriya & Pinkston, IPPS 1997) — flit-level simulator "
            "with true CWG-knot deadlock detection"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one simulation")
    sim.add_argument("--k", type=int, default=8, help="radix (default 8)")
    sim.add_argument("--n", type=int, default=2, help="dimensions (default 2)")
    sim.add_argument("--unidirectional", action="store_true")
    sim.add_argument("--mesh", action="store_true")
    sim.add_argument(
        "--routing",
        default="dor",
        choices=["dor", "tfar", "tfar-mis", "dor-dateline", "duato",
                 "negative-first"],
    )
    sim.add_argument("--vcs", type=int, default=1, help="virtual channels")
    sim.add_argument("--buffer", type=int, default=2, help="buffer depth (flits)")
    sim.add_argument("--length", type=int, default=16, help="message length")
    sim.add_argument("--traffic", default="uniform")
    sim.add_argument("--load", type=float, default=0.5, help="normalized load")
    sim.add_argument("--recovery", default="disha",
                     choices=["disha", "abort-all", "none"])
    sim.add_argument("--warmup", type=int, default=500)
    sim.add_argument("--cycles", type=int, default=3000, help="measured cycles")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--progress", type=int, default=0,
                     help="print progress every N cycles")
    sim.add_argument("--obs-level", type=int, default=0, choices=[0, 1, 2],
                     help="observability: 0 off, 1 metrics+profiler, "
                          "2 adds cycle-level tracing (default 0)")
    sim.add_argument("--trace-out", metavar="PATH",
                     help="write the cycle-level trace (implies --obs-level 2);"
                          " '.jsonl' suffix selects JSONL, anything else "
                          "Chrome-trace JSON for chrome://tracing / Perfetto")
    sim.add_argument("--trace-capacity", type=int, default=65_536,
                     help="trace ring-buffer bound in events (default 65536)")

    exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    exp.add_argument(
        "id",
        choices=["FIG5", "FIG6", "FIG7", "FIG8", "SEC3.5", "SEC3.6",
                 "TAB-AVOID", "ABL-DET", "ABL-REC", "ABL-SEL", "ABL-INT",
                 "ABL-TIMEOUT", "EXT-LEN", "EXT-GRAN", "EXT-FAULT", "ABL-ARB", "all"],
    )
    exp.add_argument("--scale", default="bench",
                     choices=["tiny", "bench", "paper"])
    exp.add_argument("--csv", metavar="PATH", help="also write CSV rows")
    exp.add_argument("--chart", action="store_true",
                     help="render ASCII charts of the figure series")
    exp.add_argument("--obs-level", type=int, default=0, choices=[0, 1, 2],
                     help="collect observability metrics in every sweep "
                          "point and print per-series rollups (default 0)")
    return parser


def _run_simulate(args: argparse.Namespace) -> int:
    from repro.network.simulator import NetworkSimulator

    obs_level = args.obs_level
    if args.trace_out and obs_level < 2:
        obs_level = 2  # tracing needs the level-2 ring buffer
    config = SimulationConfig(
        k=args.k,
        n=args.n,
        bidirectional=not args.unidirectional,
        mesh=args.mesh,
        routing=args.routing,
        num_vcs=args.vcs,
        buffer_depth=args.buffer,
        message_length=args.length,
        traffic=args.traffic,
        load=args.load,
        recovery=args.recovery,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        obs_level=obs_level,
        obs_trace_capacity=args.trace_capacity,
    )
    sim = NetworkSimulator(config)
    print(f"simulating {config.label()} ...")
    result = sim.run(progress_every=args.progress)
    cap = sim.topology.capacity_flits_per_node_cycle
    print(result.summary())
    print(f"throughput (normalized): {result.normalized_throughput(cap):.3f}")
    print(
        f"deadlocks: {result.deadlocks} "
        f"({result.single_cycle_deadlocks} single-cycle, "
        f"{result.multi_cycle_deadlocks} multi-cycle)"
    )
    if result.deadlocks:
        print(
            f"avg deadlock set {result.avg_deadlock_set_size:.1f} msgs, "
            f"avg resource set {result.avg_resource_set_size:.1f} VCs, "
            f"avg knot density {result.avg_knot_cycle_density:.1f}"
        )
    if sim.obs.enabled:
        print()
        print(sim.obs.phase_table())
    if args.trace_out:
        tracer = sim.obs.tracer
        if args.trace_out.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out)
        else:
            tracer.write_chrome(args.trace_out)
        stats = tracer.stats()
        print(
            f"trace written to {args.trace_out} "
            f"({stats['events']} events, {stats['dropped']} dropped)"
        )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.base import set_default_obs_level
    from repro.experiments.report import (
        render_figure,
        render_obs_rollup,
        sweep_csv,
    )

    set_default_obs_level(args.obs_level)
    wanted = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    csv_parts = []
    for exp_id in wanted:
        result = ALL_EXPERIMENTS[exp_id](scale=args.scale)
        print(result.format_tables())
        if args.obs_level:
            rollup = render_obs_rollup(result)
            if rollup:
                print()
                print(rollup)
        if args.chart:
            print()
            print(render_figure(result, "norm_deadlocks"))
            print()
            print(render_figure(result, "throughput"))
        if args.csv:
            csv_parts.append(sweep_csv(result))
        print()
    if args.csv and csv_parts:
        header = csv_parts[0].splitlines()[0]
        body = [ln for part in csv_parts for ln in part.splitlines()[1:]]
        with open(args.csv, "w") as fh:
            fh.write("\n".join([header, *body]) + "\n")
        print(f"CSV written to {args.csv}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    return _run_experiment(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
