"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` regenerates one of the paper's figures/tables at
``bench`` scale (8-ary 2-cube, 16-flit messages — see DESIGN.md for the
scaling rationale) and prints the same rows the paper plots.  The timed
quantity is the full experiment; ``pedantic(rounds=1)`` is used because a
multi-minute simulation sweep is its own statistics.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

BENCH_OVERRIDES = dict(measure_cycles=2_000, warmup_cycles=400)
BENCH_LOADS = [0.2, 0.5, 0.8, 1.2]


def run_once(benchmark, fn, *args, **kwargs):
    """Time a single execution of ``fn`` and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_result(result) -> None:
    print()
    print(result.format_tables())
