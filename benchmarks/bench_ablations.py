"""Benchmarks: design-choice ablations (ABL-REC, ABL-SEL, ABL-INT, ABL-TIMEOUT).

Each regenerates one ablation table from DESIGN.md's design-choice list:
recovery teardown fidelity, channel-selection policy, detection period,
and knot-detection vs timeout-heuristic recovery end to end.
"""

from benchmarks._util import print_result, run_once
from repro.experiments import ablations

SHORT = dict(measure_cycles=1_500, warmup_cycles=300)


def test_ablation_teardown(benchmark):
    result = run_once(benchmark, ablations.run_teardown, scale="bench", **SHORT)
    print_result(result)
    obs = result.observations
    # both modes detect deadlocks and keep the network live
    assert obs["instant_total_deadlocks"] > 0
    assert obs["flit-by-flit_total_deadlocks"] > 0
    assert obs["instant_peak_throughput"] > 0
    assert obs["flit-by-flit_peak_throughput"] > 0


def test_ablation_selection(benchmark):
    result = run_once(benchmark, ablations.run_selection, scale="bench", **SHORT)
    print_result(result)
    obs = result.observations
    assert obs["straight_peak_throughput"] > 0
    assert obs["random_peak_throughput"] > 0


def test_ablation_detection_interval(benchmark):
    result = run_once(
        benchmark, ablations.run_detection_interval, scale="bench", **SHORT
    )
    print_result(result)
    obs = result.observations
    # frequent detection breaks deadlocks promptly: more recoveries, better
    # or equal latency than leaving knots wedged for 1000 cycles
    assert obs["i10_deadlocks"] >= obs["i1000_deadlocks"] * 0.5
    assert obs["i10_throughput"] >= obs["i1000_throughput"] - 0.05


def test_ablation_timeout_mode(benchmark):
    result = run_once(
        benchmark, ablations.run_timeout_mode, scale="bench", **SHORT
    )
    print_result(result)
    obs = result.observations
    assert obs["true_recoveries"] > 0
    # an aggressive timeout performs more recoveries than true detection
    assert obs["t100_recoveries"] >= obs["true_recoveries"] * 0.2
    # and some of them are unnecessary
    assert obs["t100_unnecessary"] >= 0


def test_ablation_message_length(benchmark):
    result = run_once(
        benchmark, ablations.run_message_length, scale="bench",
        lengths=(4, 16, 32), **SHORT,
    )
    print_result(result)
    obs = result.observations
    # longer worms hold more channels: resource sets grow with length
    if obs["len32_avg_resource_set"] and obs["len4_avg_resource_set"]:
        assert obs["len32_avg_resource_set"] >= obs["len4_avg_resource_set"]


def test_ablation_granularity(benchmark):
    result = run_once(
        benchmark, ablations.run_granularity, scale="bench", load=0.9, **SHORT
    )
    print_result(result)
    obs = result.observations
    assert obs["detections"] > 0
    # message-level cycles appear at least as often as true deadlocks
    assert obs["pwfg_cyclic_detections"] >= obs["true_deadlocked_detections"]


def test_ablation_faults(benchmark):
    result = run_once(
        benchmark, ablations.run_faults, scale="bench",
        fault_counts=(0, 4, 8), **SHORT,
    )
    print_result(result)
    obs = result.observations
    # degraded topologies are at least as congested as the healthy one
    assert obs["f8_blocked_pct"] >= obs["f0_blocked_pct"] - 10.0


def test_ablation_arbitration(benchmark):
    result = run_once(
        benchmark, ablations.run_arbitration, scale="bench", **SHORT
    )
    print_result(result)
    obs = result.observations
    for policy in ("random", "oldest-first", "round-robin"):
        assert obs[f"{policy}_throughput"] > 0
