"""Micro-benchmarks for the detection core: SCC, knots, cycles, CWG build.

These time the detector's building blocks at realistic sizes (the CWG of a
saturated 16-ary 2-cube holds on the order of 10^3 vertices), because
detection cost is what bounds how often a recovery router can afford to
invoke true deadlock detection — the paper runs it every 50 cycles.
"""

import random

from repro.core.cwg import ChannelWaitForGraph
from repro.core.cycles import count_simple_cycles
from repro.core.detector import DeadlockDetector
from repro.core.knots import find_knots, strongly_connected_components
from repro.network.simulator import NetworkSimulator
from repro.config import bench_default


def random_wait_graph(num_messages=400, chain_len=6, fan_out=2, seed=1):
    """A synthetic CWG shaped like a saturated adaptive network."""
    rng = random.Random(seed)
    g = ChannelWaitForGraph()
    vertex = 0
    heads = []
    for m in range(num_messages):
        chain = list(range(vertex, vertex + chain_len))
        vertex += chain_len
        g.add_ownership_chain(m, chain)
        heads.append(chain)
    for m in range(num_messages):
        targets = []
        for _ in range(fan_out):
            other = rng.randrange(num_messages)
            targets.append(rng.choice(heads[other]))
        g.add_request(m, targets)
    return g


def test_scc_on_saturated_cwg(benchmark):
    adj = random_wait_graph().adjacency()
    result = benchmark(strongly_connected_components, adj)
    assert sum(len(c) for c in result) == len(adj)


def test_knot_detection_on_saturated_cwg(benchmark):
    adj = random_wait_graph().adjacency()
    knots = benchmark(find_knots, adj)
    assert isinstance(knots, list)


def test_cycle_census_capped(benchmark):
    adj = random_wait_graph(num_messages=150, fan_out=3).adjacency()
    result = benchmark(count_simple_cycles, adj, 5_000)
    assert result.count >= 0


def test_cwg_snapshot_of_live_network(benchmark):
    cfg = bench_default(routing="tfar", num_vcs=1, load=1.0,
                        warmup_cycles=0, measure_cycles=1)
    sim = NetworkSimulator(cfg)
    for _ in range(600):  # drive the network into congestion
        sim.step()
    g = benchmark(DeadlockDetector.build_cwg, sim)
    assert g.num_vertices > 0


def test_full_detection_pass(benchmark):
    cfg = bench_default(routing="tfar", num_vcs=1, load=1.0,
                        warmup_cycles=0, measure_cycles=1)
    sim = NetworkSimulator(cfg)
    for _ in range(600):
        sim.step()
    detector = DeadlockDetector(count_cycles=True, max_cycles_counted=5_000)
    record = benchmark(detector.detect, sim)
    assert record.cwg_vertices > 0


def test_incremental_vs_rebuild_snapshot(benchmark):
    """Incremental maintenance amortizes CWG construction over events; the
    per-detection cost is one snapshot materialization instead of a full
    network walk."""
    from repro.config import bench_default

    cfg = bench_default(routing="tfar", num_vcs=1, load=1.0,
                        cwg_maintenance="incremental",
                        warmup_cycles=0, measure_cycles=1)
    sim = NetworkSimulator(cfg)
    for _ in range(600):
        sim.step()
    g = benchmark(sim.cwg_snapshot)
    assert g.num_vertices > 0
    # the maintained graph is the rebuilt graph
    rebuilt = DeadlockDetector.build_cwg(sim)
    assert g.chains == rebuilt.chains
