"""Benchmark: regenerate Figure 6 (DOR vs TFAR adaptivity, 1 VC).

Paper shape targets: DOR forms far more actual deadlocks (factor up to ~6)
but every one is single-cycle and small; TFAR deadlocks are rare but large
multi-cycle events with bigger deadlock/resource sets and knot densities.
"""

from benchmarks._util import BENCH_LOADS, BENCH_OVERRIDES, print_result, run_once
from repro.experiments import fig6


def test_fig6_dor_vs_tfar(benchmark):
    result = run_once(
        benchmark, fig6.run, scale="bench", loads=BENCH_LOADS, **BENCH_OVERRIDES
    )
    print_result(result)
    obs = result.observations
    assert obs["dor_total_deadlocks"] > obs["tfar_total_deadlocks"]
    assert obs["dor_multi_cycle_deadlocks"] == 0
    if obs["tfar_total_deadlocks"]:
        assert obs["deadlock_set_ratio_tfar_over_dor"] > 1.0
        assert obs["resource_set_ratio_tfar_over_dor"] > 1.0
