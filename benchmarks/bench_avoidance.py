"""Benchmark: recovery vs avoidance on an equal resource budget (TAB-AVOID).

Paper-motivated shape targets: the avoidance baselines are knot-free
(detector validation), and unrestricted TFAR + recovery sustains at least
dateline-DOR's peak throughput — the paper's viability conclusion.
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import avoidance_vs_recovery


def test_recovery_vs_avoidance(benchmark):
    result = run_once(
        benchmark,
        avoidance_vs_recovery.run,
        scale="bench",
        loads=[0.4, 0.8],
        **BENCH_OVERRIDES,
    )
    print_result(result)
    obs = result.observations
    assert obs["dateline_total_deadlocks"] == 0
    assert obs["duato_total_deadlocks"] == 0
    assert obs["recovery_peak_throughput"] >= 0.8 * obs["dateline_peak_throughput"]
