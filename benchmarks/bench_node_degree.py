"""Benchmark: regenerate Section 3.5 (node degree / dimensionality).

Paper shape target: the higher-dimensional equal-size torus forms a small
fraction of the 2-D network's deadlocks (paper: <1% before saturation).
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import node_degree


def test_node_degree(benchmark):
    result = run_once(
        benchmark,
        node_degree.run,
        scale="bench",
        loads=[0.8, 1.2],
        **BENCH_OVERRIDES,
    )
    print_result(result)
    obs = result.observations
    assert obs["high_dim_total_deadlocks"] <= obs["low_dim_total_deadlocks"]
