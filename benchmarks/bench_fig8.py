"""Benchmark: regenerate Figure 8 (buffer depth, wormhole -> cut-through).

Paper shape targets: deeper buffers saturate at equal-or-higher loads;
normalized per message in the network, the shallowest wormhole buffers
deadlock the most and virtual cut-through the least.
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import fig8


def test_fig8_buffer_depth(benchmark):
    result = run_once(
        benchmark,
        fig8.run,
        scale="bench",
        loads=[0.8, 1.2],
        **BENCH_OVERRIDES,
    )
    print_result(result)
    obs = result.observations
    depths = fig8.buffer_depths_for(16)
    vct, shallow = max(depths), min(depths)
    assert (
        obs[f"buf{vct}_deadlocks_per_msg_in_net"]
        <= obs[f"buf{shallow}_deadlocks_per_msg_in_net"] + 1e-9
    )
