"""Benchmark: detector ablation (true knots vs timeout heuristics, ABL-DET).

Shape target: timeout heuristics trade precision against recall with no
good operating point — small thresholds flag swathes of merely-congested
messages (false positives), large ones leave true deadlocks undetected for
thousands of cycles.
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import detector_ablation


def test_detector_ablation(benchmark):
    result = run_once(
        benchmark,
        detector_ablation.run,
        scale="bench",
        load=1.0,
        **BENCH_OVERRIDES,
    )
    print_result(result)
    obs = result.observations
    assert obs["true_deadlocks"] > 0
    # precision improves with threshold, false positives shrink
    assert obs["t2000_false_positives"] <= obs["t50_false_positives"]
    assert obs["t2000_precision"] >= obs["t50_precision"] - 1e-9
