"""Benchmark: regenerate Section 3.6 (non-uniform traffic patterns).

Paper shape target: non-uniform patterns behave broadly like uniform —
except permutations that preclude the circular message overlap DOR
single-cycle deadlocks require, which suppress DOR deadlocks.
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import traffic_patterns


def test_traffic_patterns_dor(benchmark):
    result = run_once(
        benchmark,
        traffic_patterns.run,
        scale="bench",
        loads=[0.8],
        routing="dor",
        **BENCH_OVERRIDES,
    )
    print_result(result)
    assert result.observations["uniform_total_deadlocks"] >= 0
    # every pattern produced a full sweep
    assert len(result.sweeps) == 5
