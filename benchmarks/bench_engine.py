"""Micro-benchmarks for the flit-level engine: simulated cycles per second.

Times 200-cycle slices of a warmed network.  This is the number that
governs how long every figure sweep takes and what the repro band's "slow
for long deadlock-frequency runs" refers to.
"""

from repro.config import bench_default
from repro.network.simulator import NetworkSimulator


def warmed_sim(**overrides):
    cfg = bench_default(warmup_cycles=0, measure_cycles=1, **overrides)
    sim = NetworkSimulator(cfg)
    for _ in range(400):
        sim.step()
    return sim


def slice_of(sim, cycles=200):
    def run_slice():
        for _ in range(cycles):
            sim.step()
    return run_slice


def test_engine_dor_moderate_load(benchmark):
    sim = warmed_sim(routing="dor", num_vcs=1, load=0.4)
    benchmark.pedantic(slice_of(sim), rounds=3, iterations=1)
    assert sim.cycle > 400


def test_engine_tfar_saturated(benchmark):
    sim = warmed_sim(routing="tfar", num_vcs=1, load=1.0)
    benchmark.pedantic(slice_of(sim), rounds=3, iterations=1)
    assert sim.cycle > 400


def test_engine_four_vcs(benchmark):
    sim = warmed_sim(routing="tfar", num_vcs=4, load=0.8)
    benchmark.pedantic(slice_of(sim), rounds=3, iterations=1)
    assert sim.cycle > 400


def saturated_16ary_sim(engine_fast_path=True, warm=150):
    """The acceptance scenario: paper-scale 16-ary 2-cube, TFAR, load 0.9.

    Incremental CWG maintenance and no cycle census: the configuration the
    activity-tracked fast path targets (detection short-circuiting plus
    snapshot-free adjacency).  ``scripts/bench_baseline.py`` times this same
    scenario with the fast path on and off and records the speedup in
    ``BENCH_core.json``.
    """
    from repro.config import paper_default

    cfg = paper_default(
        warmup_cycles=0,
        measure_cycles=1,
        routing="tfar",
        num_vcs=1,
        load=0.9,
        cwg_maintenance="incremental",
        count_cycles=False,
        engine_fast_path=engine_fast_path,
    )
    sim = NetworkSimulator(cfg)
    for _ in range(warm):
        sim.step()
    return sim


def test_engine_saturated_16ary_fast(benchmark):
    sim = saturated_16ary_sim(engine_fast_path=True)
    benchmark.pedantic(slice_of(sim, cycles=150), rounds=2, iterations=1)
    assert sim.cycle > 150


def test_engine_saturated_16ary_legacy(benchmark):
    sim = saturated_16ary_sim(engine_fast_path=False)
    benchmark.pedantic(slice_of(sim, cycles=150), rounds=2, iterations=1)
    assert sim.cycle > 150


def test_engine_paper_scale_slice(benchmark):
    """One 100-cycle slice of the paper's true 16-ary 2-cube (256 nodes)."""
    from repro.config import paper_default

    cfg = paper_default(warmup_cycles=0, measure_cycles=1, load=0.5)
    sim = NetworkSimulator(cfg)
    for _ in range(150):
        sim.step()
    benchmark.pedantic(slice_of(sim, cycles=100), rounds=1, iterations=1)
    assert sim.cycle > 150
