"""Benchmark: regenerate Figure 7 (virtual channels, DOR/TFAR x 1..4 VCs).

Paper shape targets: DOR with >= 3 VCs and TFAR with >= 2 VCs form no
deadlocks at all; added VCs cut the blocked-message percentage; cycle
counts climb steeply only near saturation.
"""

from benchmarks._util import BENCH_OVERRIDES, print_result, run_once
from repro.experiments import fig7


def test_fig7_virtual_channels(benchmark):
    result = run_once(
        benchmark,
        fig7.run,
        scale="bench",
        loads=[0.6, 1.0],
        vc_counts=(1, 2, 3, 4),
        **BENCH_OVERRIDES,
    )
    print_result(result)
    obs = result.observations
    assert obs["DOR3_total_deadlocks"] == 0
    assert obs["DOR4_total_deadlocks"] == 0
    assert obs["TFAR2_total_deadlocks"] == 0
    assert obs["TFAR3_total_deadlocks"] == 0
    assert obs["TFAR4_total_deadlocks"] == 0
    assert obs["DOR1_total_deadlocks"] >= obs["DOR2_total_deadlocks"]
    # extra VCs reduce congestion: best-case blocked% falls monotonically
    assert obs["TFAR4_min_blocked_pct"] <= obs["TFAR1_min_blocked_pct"] + 5.0
