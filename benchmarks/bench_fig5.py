"""Benchmark: regenerate Figure 5 (uni- vs bidirectional torus, DOR, 1 VC).

Paper shape targets: the uni-torus shows markedly higher normalized
deadlocks at every load despite lower capacity; deadlock sets stay small
and every deadlock is single-cycle.
"""

from benchmarks._util import BENCH_LOADS, BENCH_OVERRIDES, print_result, run_once
from repro.experiments import fig5


def test_fig5_uni_vs_bi(benchmark):
    result = run_once(
        benchmark, fig5.run, scale="bench", loads=BENCH_LOADS, **BENCH_OVERRIDES
    )
    print_result(result)
    obs = result.observations
    assert obs["uni_norm_deadlocks_deep"] > obs["bi_norm_deadlocks_deep"]
    assert obs["uni_total_deadlocks"] > obs["bi_total_deadlocks"]
